//! Grouped GEMM — CUTLASS-style scheduler over sub-problems of arbitrary
//! shape, with the paper's warp-prefetch optimization and fusion hooks.
//!
//! Batched GEMM demands identical shapes; **grouped GEMM** lifts that
//! restriction with a built-in scheduler that hands out fixed-size `C` tiles
//! across *all* sub-problems in a round-robin walk (paper Fig. 5). This is
//! the machinery that lets fused MHA run one attention unit per
//! `(batch, head)` pair at its *true* sequence length — no padding at all.
//!
//! Three paper mechanisms live here:
//!
//! * **Problem visitor** ([`Scheduler::PerTile`]): each virtual CTA advances
//!   its linear tile index by the grid size and asks the scheduler to decode
//!   it into `(problem, tile_row, tile_col)` — one scheduler visit per tile,
//!   like stock CUTLASS.
//! * **Warp prefetch** ([`Scheduler::WarpPrefetch`], Fig. 7): one scheduler
//!   interaction decodes the next 32 assignments at once (all lanes of a
//!   warp computing metadata cooperatively), giving 32× fewer visits. The
//!   paper measured ~10% end-to-end on grouped GEMM; we count visits exactly
//!   and also pay the real decode cost per visit, so both the metric and the
//!   wall-clock reflect the optimization.
//! * **Fusion hooks**: [`TileEpilogue`] runs on the accumulator tile before
//!   it is stored (softmax partial reduction, Fig. 8), and [`ALoadTransform`]
//!   runs on `A` fragments as they are loaded into the "register tile"
//!   (Algorithm III.2's mainloop fusion, used to fold
//!   `exp(x - max) / sum` into the `P·V` GEMM).
//!
//! Both entry points ([`grouped_sgemm`], [`grouped_sgemm_strided`]) share
//! one generic CTA-walk driver parameterized by a store policy, so the
//! contiguous and strided paths cannot drift. Tiles compute on the
//! register-blocked microkernel of [`crate::micro`] out of the worker's
//! persistent `Scratch` arena — the pool's workers outlive launches, so
//! a CTA borrows an arena that is already warm from previous launches
//! (zero heap allocations per tile, and zero per launch once shapes have
//! been seen) — and stores go through lock-free [`DisjointWriter`]s —
//! tiles partition the output, so CTAs never serialize on a mutex.

use crate::isa::active_kernel;
use crate::micro::{pack_b_panel, MicroKernel, MR_MAX, NR_MAX};
use crate::scratch::{with_worker_scratch, Scratch};
use crate::store::DisjointWriter;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// One sub-problem of a grouped GEMM: `C = alpha * A·op(B)`, row-major.
#[derive(Debug, Clone, Copy)]
pub struct GroupedProblem<'a> {
    /// Rows of the output.
    pub m: usize,
    /// Columns of the output.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
    /// Consume `B` transposed (`B` stored `n×k`) — the `Q·Kᵀ` layout.
    pub transb: bool,
    /// Scale on the product.
    pub alpha: f32,
    /// Left operand, `m×k` row-major.
    pub a: &'a [f32],
    /// Right operand, `k×n` (or `n×k` when `transb`) row-major.
    pub b: &'a [f32],
}

/// Tile-assignment strategy of the grouped-GEMM problem visitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheduler {
    /// Stock CUTLASS behaviour: one scheduler visit decodes one tile.
    PerTile,
    /// The paper's optimization: one visit decodes the next 32 tiles.
    WarpPrefetch,
}

/// Number of assignments decoded per warp-prefetch scheduler visit (the 32
/// lanes of a warp).
pub const PREFETCH_WIDTH: usize = 32;

/// Geometry and grid configuration for a grouped launch.
#[derive(Debug, Clone, Copy)]
pub struct GroupedConfig {
    /// Tile rows (the paper's `M_C`; CUTLASS default 128, ours 64 to suit
    /// CPU cache tiles — the scheduler walk is identical either way).
    pub tile_m: usize,
    /// Tile columns (`N_C`).
    pub tile_n: usize,
    /// Number of virtual CTAs walking the tile space (A100 has 108 SMs).
    pub num_ctas: usize,
    /// Tile-assignment strategy.
    pub scheduler: Scheduler,
}

impl Default for GroupedConfig {
    fn default() -> Self {
        Self {
            tile_m: 64,
            tile_n: 64,
            num_ctas: 108,
            scheduler: Scheduler::WarpPrefetch,
        }
    }
}

/// Post-run statistics for the scheduler ablation (paper §III.E.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupedStats {
    /// Total `C` tiles computed across all sub-problems.
    pub tiles: u64,
    /// Scheduler interactions performed (tiles / 32, rounded up per CTA,
    /// under warp prefetch).
    pub scheduler_visits: u64,
    /// Scratch-arena growth events this launch caused, summed over CTAs.
    /// Bounded by per-worker shape high-water marks — *not* by tile count —
    /// and **zero** for a launch whose shapes the workers have already
    /// seen, because the arenas persist across launches.
    pub scratch_grows: u64,
}

/// Epilogue applied to each accumulator tile before it is stored to `C`.
pub trait TileEpilogue: Sync {
    /// `tile` is a dense `rows×cols` row-major buffer holding the final
    /// (alpha-scaled) values of `C[row0.., col0..]` for problem
    /// `problem_idx`.
    fn apply(&self, problem_idx: usize, row0: usize, col0: usize, rows: usize, cols: usize, tile: &mut [f32]);
}

/// No-op epilogue.
pub struct NoEpilogue;

impl TileEpilogue for NoEpilogue {
    fn apply(&self, _: usize, _: usize, _: usize, _: usize, _: usize, _: &mut [f32]) {}
}

/// Mainloop fusion hook: transforms a freshly loaded `A` fragment
/// (Algorithm III.2's `elementwise_transform` on `warp_loaded_frag_A`).
pub trait ALoadTransform: Sync {
    /// `a_chunk` holds `A[global_row, k0 .. k0 + a_chunk.len()]` of problem
    /// `problem_idx`, already copied into the register tile.
    fn transform(&self, problem_idx: usize, global_row: usize, k0: usize, a_chunk: &mut [f32]);
}

/// No-op load transform.
pub struct NoTransform;

impl ALoadTransform for NoTransform {
    fn transform(&self, _: usize, _: usize, _: usize, _: &mut [f32]) {}
}

/// Decoded tile assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TileAssignment {
    problem: usize,
    tile_row: usize,
    tile_col: usize,
}

/// The problem visitor: decodes linear tile indices into per-problem tile
/// coordinates, mirroring `cutlass::gemm::kernel::GroupedProblemVisitor`.
struct ProblemVisitor {
    /// Exclusive prefix sum of per-problem tile counts.
    prefix: Vec<u64>,
    grid_cols: Vec<usize>,
    total: u64,
}

impl ProblemVisitor {
    fn new(problems: &[GroupedProblem<'_>], tile_m: usize, tile_n: usize) -> Self {
        let mut prefix = Vec::with_capacity(problems.len() + 1);
        let mut grid_cols = Vec::with_capacity(problems.len());
        let mut total = 0u64;
        prefix.push(0);
        for p in problems {
            let rows = p.m.div_ceil(tile_m);
            let cols = p.n.div_ceil(tile_n);
            grid_cols.push(cols);
            total += (rows * cols) as u64;
            prefix.push(total);
        }
        Self {
            prefix,
            grid_cols,
            total,
        }
    }

    /// Decodes one linear tile index. `cursor` caches the problem the CTA
    /// last visited so the scan is incremental, as in CUTLASS (tile indices
    /// per CTA are monotonically increasing).
    fn decode(&self, linear: u64, cursor: &mut usize) -> TileAssignment {
        debug_assert!(linear < self.total);
        while self.prefix[*cursor + 1] <= linear {
            *cursor += 1;
        }
        let problem = *cursor;
        let local = (linear - self.prefix[problem]) as usize;
        let cols = self.grid_cols[problem];
        TileAssignment {
            problem,
            tile_row: local / cols,
            tile_col: local % cols,
        }
    }
}

/// Store policy of the generic grouped driver: where a finished output tile
/// lands. Implementations write through [`DisjointWriter`]s — never a lock.
trait TileStore: Sync {
    /// Stores the dense `rows×cols` tile of problem `problem_idx` whose
    /// top-left element is `C[row0, col0]`.
    fn store(&self, problem_idx: usize, row0: usize, col0: usize, rows: usize, cols: usize, tile: &[f32]);
}

/// Per-problem contiguous `m×n` outputs ([`grouped_sgemm`]).
struct ContiguousStore<'a> {
    writers: Vec<DisjointWriter<'a>>,
    /// Leading dimension (= `n`) of each problem's output.
    ns: Vec<usize>,
}

impl TileStore for ContiguousStore<'_> {
    fn store(&self, problem_idx: usize, row0: usize, col0: usize, rows: usize, cols: usize, tile: &[f32]) {
        let n = self.ns[problem_idx];
        let w = &self.writers[problem_idx];
        for i in 0..rows {
            w.write((row0 + i) * n + col0, &tile[i * cols..(i + 1) * cols]);
        }
    }
}

/// One shared buffer with per-problem strided placements
/// ([`grouped_sgemm_strided`]).
struct StridedStore<'a> {
    writer: DisjointWriter<'a>,
    placements: &'a [StridedOutput],
}

impl TileStore for StridedStore<'_> {
    fn store(&self, problem_idx: usize, row0: usize, col0: usize, rows: usize, cols: usize, tile: &[f32]) {
        let pl = &self.placements[problem_idx];
        for i in 0..rows {
            self.writer
                .write(pl.offset + (row0 + i) * pl.ld + col0, &tile[i * cols..(i + 1) * cols]);
        }
    }
}

/// The shared CTA walk: virtual CTAs pull tile batches from the scheduler
/// (one assignment per visit under [`Scheduler::PerTile`],
/// [`PREFETCH_WIDTH`] under [`Scheduler::WarpPrefetch`]), compute each tile
/// on the microkernel out of a per-CTA scratch arena, and store through the
/// policy. Both public entry points funnel here, so the two paths cannot
/// drift.
fn run_grouped(
    problems: &[GroupedProblem<'_>],
    config: GroupedConfig,
    epilogue: &dyn TileEpilogue,
    a_transform: &dyn ALoadTransform,
    store: &dyn TileStore,
) -> GroupedStats {
    let visitor = ProblemVisitor::new(problems, config.tile_m, config.tile_n);
    let total = visitor.total;
    if total == 0 {
        return GroupedStats {
            tiles: 0,
            scheduler_visits: 0,
            scratch_grows: 0,
        };
    }
    let visits = AtomicU64::new(0);
    let grows = AtomicU64::new(0);
    // One kernel per launch, shared by every CTA: tile geometry must stay
    // consistent even if the process-wide selection changes mid-flight. The
    // same holds for the precision axis — resolved once here, so every CTA
    // of a launch agrees on the low-precision tier (or its absence).
    let kern = active_kernel();
    let lowp = crate::lowp::resolve_lowp_kernel(crate::prec::active_precision(), kern.isa);
    if bt_obs::enabled() {
        match lowp {
            Some(lk) => bt_obs::counter(&format!("gemm.grouped.tiles.{}.{}", lk.isa.name(), lk.prec.name())).add(total),
            None => bt_obs::counter(&format!("gemm.grouped.tiles.{}", kern.isa.name())).add(total),
        }
        // Per-dispatch-path rate inputs: the windowed snapshot divides the
        // flops delta by the window to report GFLOP/s per `<isa>.<prec>`.
        let (isa, prec) = match lowp {
            Some(lk) => (lk.isa.name(), lk.prec.name()),
            None => (kern.isa.name(), "f32"),
        };
        let flops: u64 = problems.iter().map(|p| 2 * (p.m * p.n * p.k) as u64).sum();
        bt_obs::counter(&format!("{}{isa}.{prec}", bt_obs::names::GEMM_CALLS_PREFIX)).incr();
        bt_obs::counter(&format!("{}{isa}.{prec}", bt_obs::names::GEMM_FLOPS_PREFIX)).add(flops);
    }
    let batch_width = match config.scheduler {
        Scheduler::PerTile => 1,
        Scheduler::WarpPrefetch => PREFETCH_WIDTH,
    };

    (0..config.num_ctas).into_par_iter().for_each(|cta| {
        // The CTA's "shared memory" is its worker's persistent arena: the
        // pool workers outlive launches, so the buffers are usually warm
        // already. Grows are reported as this launch's delta so the stat
        // stays per-launch even though the arena is not.
        with_worker_scratch(|scratch| {
            let _span = bt_obs::span!("gemm.grouped.cta");
            let grows_before = scratch.grow_count();
            let mut cursor = 0usize;
            let mut local_visits = 0u64;
            let mut batch = [TileAssignment {
                problem: 0,
                tile_row: 0,
                tile_col: 0,
            }; PREFETCH_WIDTH];
            let step = config.num_ctas as u64;
            let mut linear = cta as u64;
            while linear < total {
                local_visits += 1;
                let mut count = 0;
                while count < batch_width && linear < total {
                    batch[count] = visitor.decode(linear, &mut cursor);
                    count += 1;
                    linear += step;
                }
                for asg in &batch[..count] {
                    match lowp {
                        Some(lk) => {
                            compute_tile_lowp(problems, &config, lk, *asg, epilogue, a_transform, store, scratch)
                        }
                        None => compute_tile(problems, &config, kern, *asg, epilogue, a_transform, store, scratch),
                    }
                }
            }
            visits.fetch_add(local_visits, Ordering::Relaxed);
            grows.fetch_add(scratch.grow_count() - grows_before, Ordering::Relaxed);
            SCRATCH_HWM.record_max(scratch.high_water_elems() as u64);
        });
    });

    let stats = GroupedStats {
        tiles: total,
        scheduler_visits: visits.load(Ordering::Relaxed),
        scratch_grows: grows.load(Ordering::Relaxed),
    };
    SCHED_VISITS.add(stats.scheduler_visits);
    SCRATCH_GROWS.add(stats.scratch_grows);
    stats
}

/// Accumulated nanoseconds spent packing micropanels in [`compute_tile`]
/// (per-tile spans would flood the rings; a timed counter gives the same
/// pack-vs-compute split at a fraction of the cost).
static PACK_NS: bt_obs::Counter = bt_obs::Counter::new("gemm.grouped.pack_ns");
/// Accumulated nanoseconds in the microkernel mainloop of [`compute_tile`].
static COMPUTE_NS: bt_obs::Counter = bt_obs::Counter::new("gemm.grouped.compute_ns");
/// High-water mark of any worker's scratch arena, in f32 elements.
static SCRATCH_HWM: bt_obs::Counter = bt_obs::Counter::new("gemm.scratch.high_water_elems");
/// Total scratch-arena grow events across grouped launches.
static SCRATCH_GROWS: bt_obs::Counter = bt_obs::Counter::new("gemm.scratch.grows");
/// Total tile-scheduler visits across grouped launches (warp-prefetch
/// batching makes this `≈ tiles / PREFETCH_WIDTH`).
static SCHED_VISITS: bt_obs::Counter = bt_obs::Counter::new("gemm.grouped.scheduler_visits");

/// Runs a grouped GEMM: every sub-problem `C_i = alpha_i * A_i·op(B_i)`,
/// tiles distributed across `config.num_ctas` virtual CTAs by the selected
/// scheduler. Returns scheduler statistics for the ablation harness.
///
/// `outputs[i]` receives problem `i`'s `m×n` result (fully overwritten).
///
/// # Panics
/// Panics if `outputs` mismatches `problems` in count or any buffer is too
/// short for its declared shape.
pub fn grouped_sgemm(
    problems: &[GroupedProblem<'_>],
    outputs: Vec<&mut [f32]>,
    config: GroupedConfig,
    epilogue: &dyn TileEpilogue,
    a_transform: &dyn ALoadTransform,
) -> GroupedStats {
    assert_eq!(problems.len(), outputs.len(), "one output buffer per problem");
    for (i, (p, c)) in problems.iter().zip(&outputs).enumerate() {
        assert!(p.a.len() >= p.m * p.k, "problem {i}: A too short");
        assert!(p.b.len() >= p.k * p.n, "problem {i}: B too short");
        assert!(c.len() >= p.m * p.n, "problem {i}: C too short");
    }
    let store = ContiguousStore {
        ns: problems.iter().map(|p| p.n).collect(),
        writers: outputs.into_iter().map(DisjointWriter::new).collect(),
    };
    run_grouped(problems, config, epilogue, a_transform, &store)
}

/// Output placement of one grouped sub-problem inside a shared buffer:
/// problem rows map to `out[offset + row*ld + col]`.
///
/// This is how the second fused-MHA GEMM writes each `(batch, head)`
/// context block *directly into the packed `[valid, hidden]` activation*
/// (offset = seq start × hidden + head × head_size, ld = hidden): no
/// merge/transpose pass ever runs, exactly as the CUDA epilogue stores
/// strided.
#[derive(Debug, Clone, Copy)]
pub struct StridedOutput {
    /// Element offset of the problem's `(0, 0)` output.
    pub offset: usize,
    /// Leading dimension (elements between consecutive output rows).
    pub ld: usize,
}

/// [`grouped_sgemm`] variant writing all sub-problem outputs into one shared
/// buffer at per-problem strided placements. Placements must be disjoint —
/// CTAs store lock-free, and debug builds assert no element is written
/// twice.
///
/// # Panics
/// Panics if placements mismatch `problems` in count or overflow `out`.
pub fn grouped_sgemm_strided(
    problems: &[GroupedProblem<'_>],
    out: &mut [f32],
    placements: &[StridedOutput],
    config: GroupedConfig,
    epilogue: &dyn TileEpilogue,
    a_transform: &dyn ALoadTransform,
) -> GroupedStats {
    assert_eq!(problems.len(), placements.len(), "one placement per problem");
    for (i, (p, pl)) in problems.iter().zip(placements).enumerate() {
        assert!(p.a.len() >= p.m * p.k, "problem {i}: A too short");
        assert!(p.b.len() >= p.k * p.n, "problem {i}: B too short");
        assert!(pl.ld >= p.n, "problem {i}: ld {} < n {}", pl.ld, p.n);
        if p.m > 0 {
            assert!(
                pl.offset + (p.m - 1) * pl.ld + p.n <= out.len(),
                "problem {i}: placement overflows output buffer"
            );
        }
    }
    let store = StridedStore {
        writer: DisjointWriter::new(out),
        placements,
    };
    run_grouped(problems, config, epilogue, a_transform, &store)
}

fn tile_bounds(p: &GroupedProblem<'_>, config: &GroupedConfig, asg: TileAssignment) -> (usize, usize, usize, usize) {
    let row0 = asg.tile_row * config.tile_m;
    let col0 = asg.tile_col * config.tile_n;
    (row0, col0, config.tile_m.min(p.m - row0), config.tile_n.min(p.n - col0))
}

/// Computes one `C` tile in the CTA's scratch arena: packs `A` micropanels
/// (running the mainloop transform on each contiguous row fragment before
/// interleaving) and `B` micropanels at the launch kernel's `mr×nr`
/// geometry, accumulates every `mr×nr` block in microkernel registers
/// across the full `K` extent, then applies alpha, the tile epilogue, and
/// the store policy.
#[allow(clippy::too_many_arguments)]
fn compute_tile(
    problems: &[GroupedProblem<'_>],
    config: &GroupedConfig,
    kern: &MicroKernel,
    asg: TileAssignment,
    epilogue: &dyn TileEpilogue,
    a_transform: &dyn ALoadTransform,
    store: &dyn TileStore,
    scratch: &mut Scratch,
) {
    let p = &problems[asg.problem];
    let (row0, col0, rows, cols) = tile_bounds(p, config, asg);
    let k = p.k;
    let (mr, nr) = (kern.mr, kern.nr);
    let m_panels = rows.div_ceil(mr);
    let n_panels = cols.div_ceil(nr);
    let (a_pack, b_pack, tile, row_buf) = scratch.panels(m_panels * k * mr, n_panels * k * nr, rows * cols, k);

    bt_obs::timed(&PACK_NS, || {
        for ib in 0..m_panels {
            let r = mr.min(rows - ib * mr);
            let dst = &mut a_pack[ib * k * mr..(ib + 1) * k * mr];
            for i in 0..r {
                let g_row = row0 + ib * mr + i;
                // Stage the contiguous row fragment, run the mainloop fusion
                // hook on it (Algorithm III.2), then interleave k-major.
                row_buf.copy_from_slice(&p.a[g_row * k..g_row * k + k]);
                a_transform.transform(asg.problem, g_row, 0, row_buf);
                for (kp, &v) in row_buf.iter().enumerate() {
                    dst[kp * mr + i] = v;
                }
            }
            // Scratch is reused across tiles: stale pad lanes must be re-zeroed.
            for i in r..mr {
                for kp in 0..k {
                    dst[kp * mr + i] = 0.0;
                }
            }
        }
        for jb in 0..n_panels {
            pack_b_panel(
                &mut b_pack[jb * k * nr..(jb + 1) * k * nr],
                p.b,
                p.transb,
                col0 + jb * nr,
                nr.min(cols - jb * nr),
                p.n,
                k,
                nr,
            );
        }
    });

    bt_obs::timed(&COMPUTE_NS, || {
        for jb in 0..n_panels {
            let b_panel = &b_pack[jb * k * nr..(jb + 1) * k * nr];
            let cseg = nr.min(cols - jb * nr);
            for ib in 0..m_panels {
                let r = mr.min(rows - ib * mr);
                let mut acc = [0.0f32; MR_MAX * NR_MAX];
                kern.run(k, &a_pack[ib * k * mr..(ib + 1) * k * mr], b_panel, &mut acc);
                for i in 0..r {
                    let trow = ib * mr + i;
                    tile[trow * cols + jb * nr..trow * cols + jb * nr + cseg]
                        .copy_from_slice(&acc[i * nr..i * nr + cseg]);
                }
            }
        }
    });

    if p.alpha != 1.0 {
        for v in tile.iter_mut() {
            *v *= p.alpha;
        }
    }
    epilogue.apply(asg.problem, row0, col0, rows, cols, tile);
    store.store(asg.problem, row0, col0, rows, cols, tile);
}

/// [`compute_tile`]'s low-precision twin: identical tile walk, but `A` rows
/// are quantized/narrowed as they are staged (the mainloop transform still
/// runs on the f32 staging row *before* conversion, so fused softmax
/// normalization composes with every precision tier) and the inner blocks
/// run on the [`crate::lowp`] kernel, which dequantizes into the same f32
/// accumulator the epilogue and store paths already consume.
#[allow(clippy::too_many_arguments)]
fn compute_tile_lowp(
    problems: &[GroupedProblem<'_>],
    config: &GroupedConfig,
    lk: &'static crate::lowp::LowpKernel,
    asg: TileAssignment,
    epilogue: &dyn TileEpilogue,
    a_transform: &dyn ALoadTransform,
    store: &dyn TileStore,
    scratch: &mut Scratch,
) {
    use crate::lowp::{count_pack_bytes, pack_a_pad_row_lowp, pack_a_row_lowp, pack_b_panel_lowp};
    let p = &problems[asg.problem];
    let (row0, col0, rows, cols) = tile_bounds(p, config, asg);
    let k = p.k;
    let (mr, nr) = (lk.mr, lk.nr);
    let m_panels = rows.div_ceil(mr);
    let n_panels = cols.div_ceil(nr);
    let apb = lk.a_panel_bytes(k);
    let bpb = lk.b_panel_bytes(k);
    let (a_pack, b_pack, tile, row_buf, sa, sb, colsum, cvt) = scratch.lowp_tile_panels(
        m_panels * apb,
        n_panels * bpb,
        rows * cols,
        k,
        m_panels * mr,
        n_panels * nr,
        n_panels * nr,
        k.max(nr),
    );

    bt_obs::timed(&PACK_NS, || {
        for ib in 0..m_panels {
            let r = mr.min(rows - ib * mr);
            let dst = &mut a_pack[ib * apb..(ib + 1) * apb];
            for i in 0..r {
                let g_row = row0 + ib * mr + i;
                // Stage the contiguous row fragment, run the mainloop fusion
                // hook on it (Algorithm III.2), then narrow and interleave.
                row_buf.copy_from_slice(&p.a[g_row * k..g_row * k + k]);
                a_transform.transform(asg.problem, g_row, 0, row_buf);
                sa[ib * mr + i] = pack_a_row_lowp(lk, dst, row_buf, i, cvt);
            }
            // Scratch is reused across tiles: stale pad lanes must be re-set
            // to the format's neutral code.
            for i in r..mr {
                pack_a_pad_row_lowp(lk, dst, i, k);
                sa[ib * mr + i] = 1.0;
            }
        }
        for jb in 0..n_panels {
            pack_b_panel_lowp(
                lk,
                &mut b_pack[jb * bpb..(jb + 1) * bpb],
                &mut sb[jb * nr..(jb + 1) * nr],
                &mut colsum[jb * nr..(jb + 1) * nr],
                p.b,
                p.transb,
                col0 + jb * nr,
                nr.min(cols - jb * nr),
                p.n,
                k,
                cvt,
            );
        }
    });
    if bt_obs::enabled() {
        count_pack_bytes(lk.prec, (m_panels * apb + n_panels * bpb) as u64);
    }

    bt_obs::timed(&COMPUTE_NS, || {
        for jb in 0..n_panels {
            let b_panel = &b_pack[jb * bpb..(jb + 1) * bpb];
            let cseg = nr.min(cols - jb * nr);
            for ib in 0..m_panels {
                let r = mr.min(rows - ib * mr);
                let mut acc = [0.0f32; MR_MAX * NR_MAX];
                lk.run(
                    k,
                    &a_pack[ib * apb..(ib + 1) * apb],
                    b_panel,
                    &mut acc,
                    &sa[ib * mr..(ib + 1) * mr],
                    &sb[jb * nr..(jb + 1) * nr],
                    &colsum[jb * nr..(jb + 1) * nr],
                );
                for i in 0..r {
                    let trow = ib * mr + i;
                    tile[trow * cols + jb * nr..trow * cols + jb * nr + cseg]
                        .copy_from_slice(&acc[i * nr..i * nr + cseg]);
                }
            }
        }
    });

    if p.alpha != 1.0 {
        for v in tile.iter_mut() {
            *v *= p.alpha;
        }
    }
    epilogue.apply(asg.problem, row0, col0, rows, cols, tile);
    store.store(asg.problem, row0, col0, rows, cols, tile);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::gemm_ref;
    use bt_tensor::compare::assert_close;
    use bt_tensor::rng::Xoshiro256StarStar;

    fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect()
    }

    fn run_and_check(shapes: &[(usize, usize, usize)], transb: bool, scheduler: Scheduler) -> GroupedStats {
        run_and_check_ctas(shapes, transb, scheduler, 108)
    }

    fn run_and_check_ctas(
        shapes: &[(usize, usize, usize)],
        transb: bool,
        scheduler: Scheduler,
        num_ctas: usize,
    ) -> GroupedStats {
        let a_bufs: Vec<Vec<f32>> = shapes
            .iter()
            .enumerate()
            .map(|(i, &(m, _, k))| rand_vec(m * k, i as u64 * 2 + 1))
            .collect();
        let b_bufs: Vec<Vec<f32>> = shapes
            .iter()
            .enumerate()
            .map(|(i, &(_, n, k))| rand_vec(k * n, i as u64 * 2 + 2))
            .collect();
        let problems: Vec<GroupedProblem<'_>> = shapes
            .iter()
            .enumerate()
            .map(|(i, &(m, n, k))| GroupedProblem {
                m,
                n,
                k,
                transb,
                alpha: 1.0,
                a: &a_bufs[i],
                b: &b_bufs[i],
            })
            .collect();
        let mut c_bufs: Vec<Vec<f32>> = shapes.iter().map(|&(m, n, _)| vec![0.0; m * n]).collect();
        let config = GroupedConfig {
            scheduler,
            num_ctas,
            ..Default::default()
        };
        let stats = grouped_sgemm(
            &problems,
            c_bufs.iter_mut().map(|c| c.as_mut_slice()).collect(),
            config,
            &NoEpilogue,
            &NoTransform,
        );
        for (i, &(m, n, k)) in shapes.iter().enumerate() {
            let mut expect = vec![0.0f32; m * n];
            gemm_ref(false, transb, m, n, k, 1.0, &a_bufs[i], &b_bufs[i], 0.0, &mut expect);
            assert_close(&c_bufs[i], &expect, 1e-3);
        }
        stats
    }

    #[test]
    fn variable_shapes_match_reference() {
        run_and_check(
            &[(17, 23, 31), (64, 64, 64), (1, 100, 7), (130, 5, 70)],
            false,
            Scheduler::PerTile,
        );
    }

    #[test]
    fn warp_prefetch_same_results_fewer_visits() {
        // 8 CTAs over ~82 tiles so each CTA owns several tiles — the regime
        // where prefetching one batch of 32 assignments pays off.
        let num_ctas = 8;
        let shapes: Vec<(usize, usize, usize)> = (0..12).map(|i| (40 + i * 17, 50 + i * 13, 64)).collect();
        let per_tile = run_and_check_ctas(&shapes, false, Scheduler::PerTile, num_ctas);
        let prefetch = run_and_check_ctas(&shapes, false, Scheduler::WarpPrefetch, num_ctas);
        assert_eq!(per_tile.tiles, prefetch.tiles);
        assert_eq!(per_tile.scheduler_visits, per_tile.tiles);
        assert!(
            prefetch.scheduler_visits < per_tile.scheduler_visits,
            "prefetch {} !< per-tile {}",
            prefetch.scheduler_visits,
            per_tile.scheduler_visits
        );
        // Each CTA rounds its batch count up at most once, so with the
        // actual CTA count: visits ≤ ceil(tiles/32) + num_ctas.
        assert!(
            prefetch.scheduler_visits <= per_tile.tiles.div_ceil(PREFETCH_WIDTH as u64) + num_ctas as u64,
            "prefetch visits {} exceed ceil({}/{}) + {}",
            prefetch.scheduler_visits,
            per_tile.tiles,
            PREFETCH_WIDTH,
            num_ctas
        );
    }

    #[test]
    fn scratch_reused_across_tiles_and_launches() {
        // Steady-state allocation invariants: within a launch, scratch
        // growth is bounded by shape high-water marks, never by the tile
        // count; and across launches the worker arenas persist, so an
        // identical second launch allocates nothing at all. Run under
        // `sequential` so both launches execute on this one thread (under
        // a wide pool the dynamic scheduler could hand a still-cold worker
        // its first task during the second launch).
        rayon::sequential(|| {
            let num_ctas = 4;
            let shapes: Vec<(usize, usize, usize)> = (0..12).map(|i| (40 + i * 17, 50 + i * 13, 64)).collect();
            let cold = run_and_check_ctas(&shapes, false, Scheduler::WarpPrefetch, num_ctas);
            assert!(cold.tiles > 60, "want many tiles, got {}", cold.tiles);
            // The test harness gives each #[test] a fresh thread, so this
            // thread's arena starts cold and the first launch must grow it —
            // but only up to the shape high-water marks.
            assert!(cold.scratch_grows > 0);
            assert!(
                cold.scratch_grows < cold.tiles,
                "scratch grew {} times over {} tiles",
                cold.scratch_grows,
                cold.tiles
            );
            let warm = run_and_check_ctas(&shapes, false, Scheduler::WarpPrefetch, num_ctas);
            assert_eq!(warm.tiles, cold.tiles);
            assert_eq!(
                warm.scratch_grows, 0,
                "identical second launch must find every buffer at its high-water mark"
            );
        });
    }

    #[test]
    fn transb_variable_shapes() {
        run_and_check(
            &[(33, 65, 64), (128, 96, 64), (5, 5, 64)],
            true,
            Scheduler::WarpPrefetch,
        );
    }

    #[test]
    fn empty_problem_list() {
        let stats = grouped_sgemm(&[], vec![], GroupedConfig::default(), &NoEpilogue, &NoTransform);
        assert_eq!(stats.tiles, 0);
    }

    #[test]
    fn alpha_scaling() {
        let a = vec![1.0f32; 4];
        let b = vec![1.0f32; 4];
        let problems = vec![GroupedProblem {
            m: 2,
            n: 2,
            k: 2,
            transb: false,
            alpha: 0.5,
            a: &a,
            b: &b,
        }];
        let mut c = vec![0.0f32; 4];
        grouped_sgemm(
            &problems,
            vec![c.as_mut_slice()],
            GroupedConfig::default(),
            &NoEpilogue,
            &NoTransform,
        );
        assert_eq!(c, vec![1.0; 4]); // 2 * 0.5
    }

    #[test]
    fn a_load_transform_applied() {
        // transform: negate A -> C should be negated product.
        struct Negate;
        impl ALoadTransform for Negate {
            fn transform(&self, _: usize, _: usize, _: usize, chunk: &mut [f32]) {
                for v in chunk {
                    *v = -*v;
                }
            }
        }
        let a = rand_vec(6 * 8, 1);
        let b = rand_vec(8 * 5, 2);
        let problems = vec![GroupedProblem {
            m: 6,
            n: 5,
            k: 8,
            transb: false,
            alpha: 1.0,
            a: &a,
            b: &b,
        }];
        let mut c = vec![0.0f32; 30];
        grouped_sgemm(
            &problems,
            vec![c.as_mut_slice()],
            GroupedConfig::default(),
            &NoEpilogue,
            &Negate,
        );
        let mut expect = vec![0.0f32; 30];
        gemm_ref(false, false, 6, 5, 8, -1.0, &a, &b, 0.0, &mut expect);
        assert_close(&c, &expect, 1e-4);
    }

    #[test]
    fn epilogue_sees_correct_tile_coordinates() {
        // Epilogue that writes row0+col0 into every element; with one tile
        // per problem the output becomes constant per problem.
        struct StampCoords;
        impl TileEpilogue for StampCoords {
            fn apply(&self, _p: usize, row0: usize, col0: usize, _r: usize, _c: usize, tile: &mut [f32]) {
                for v in tile {
                    *v = (row0 + col0) as f32;
                }
            }
        }
        let a = vec![0.0f32; 100 * 8];
        let b = vec![0.0f32; 8 * 100];
        let problems = vec![GroupedProblem {
            m: 100,
            n: 100,
            k: 8,
            transb: false,
            alpha: 1.0,
            a: &a,
            b: &b,
        }];
        let mut c = vec![-1.0f32; 100 * 100];
        grouped_sgemm(
            &problems,
            vec![c.as_mut_slice()],
            GroupedConfig {
                tile_m: 64,
                tile_n: 64,
                ..Default::default()
            },
            &StampCoords,
            &NoTransform,
        );
        // Element (0,0) is in tile (0,0); element (99,99) in tile (64,64).
        assert_eq!(c[0], 0.0);
        assert_eq!(c[99 * 100 + 99], 128.0);
        assert_eq!(c[99 * 100], 64.0); // tile (64, 0)
    }

    #[test]
    fn strided_output_matches_contiguous() {
        // Two problems writing into one shared [rows, 8] buffer side by side
        // (cols 0..3 and 3..8), like two heads of a packed context tensor.
        let a0 = rand_vec(70 * 16, 1);
        let b0 = rand_vec(16 * 3, 2);
        let a1 = rand_vec(70 * 16, 3);
        let b1 = rand_vec(16 * 5, 4);
        let problems = vec![
            GroupedProblem {
                m: 70,
                n: 3,
                k: 16,
                transb: false,
                alpha: 1.0,
                a: &a0,
                b: &b0,
            },
            GroupedProblem {
                m: 70,
                n: 5,
                k: 16,
                transb: false,
                alpha: 2.0,
                a: &a1,
                b: &b1,
            },
        ];
        let placements = vec![StridedOutput { offset: 0, ld: 8 }, StridedOutput { offset: 3, ld: 8 }];
        let mut out = vec![0.0f32; 70 * 8];
        grouped_sgemm_strided(
            &problems,
            &mut out,
            &placements,
            GroupedConfig::default(),
            &NoEpilogue,
            &NoTransform,
        );
        let mut e0 = vec![0.0f32; 70 * 3];
        let mut e1 = vec![0.0f32; 70 * 5];
        gemm_ref(false, false, 70, 3, 16, 1.0, &a0, &b0, 0.0, &mut e0);
        gemm_ref(false, false, 70, 5, 16, 2.0, &a1, &b1, 0.0, &mut e1);
        for r in 0..70 {
            assert_close(&out[r * 8..r * 8 + 3], &e0[r * 3..(r + 1) * 3], 1e-4);
            assert_close(&out[r * 8 + 3..r * 8 + 8], &e1[r * 5..(r + 1) * 5], 1e-4);
        }
    }

    #[test]
    fn strided_stress_adjacent_tiles_many_ctas() {
        // ThreadSanitizer-style hammer on the lock-free store: many CTAs
        // (far more than cores) store adjacent 65×65 problems side by side
        // in one shared row — every tile boundary is a potential overlap.
        // Repeated runs shake out scheduling interleavings; the debug-build
        // claim map additionally asserts element disjointness exactly.
        let n_problems = 6;
        let (m, n, k) = (65usize, 65usize, 33usize);
        let a_bufs: Vec<Vec<f32>> = (0..n_problems).map(|i| rand_vec(m * k, i as u64 + 1)).collect();
        let b_bufs: Vec<Vec<f32>> = (0..n_problems).map(|i| rand_vec(k * n, i as u64 + 100)).collect();
        let problems: Vec<GroupedProblem<'_>> = (0..n_problems)
            .map(|i| GroupedProblem {
                m,
                n,
                k,
                transb: false,
                alpha: 1.0,
                a: &a_bufs[i],
                b: &b_bufs[i],
            })
            .collect();
        let ld = n * n_problems;
        let placements: Vec<StridedOutput> = (0..n_problems).map(|i| StridedOutput { offset: i * n, ld }).collect();
        let mut expect_blocks: Vec<Vec<f32>> = Vec::new();
        for i in 0..n_problems {
            let mut e = vec![0.0f32; m * n];
            gemm_ref(false, false, m, n, k, 1.0, &a_bufs[i], &b_bufs[i], 0.0, &mut e);
            expect_blocks.push(e);
        }
        for round in 0..5 {
            let mut out = vec![f32::NAN; m * ld];
            let stats = grouped_sgemm_strided(
                &problems,
                &mut out,
                &placements,
                GroupedConfig {
                    num_ctas: 64,
                    scheduler: if round % 2 == 0 {
                        Scheduler::WarpPrefetch
                    } else {
                        Scheduler::PerTile
                    },
                    ..Default::default()
                },
                &NoEpilogue,
                &NoTransform,
            );
            assert_eq!(stats.tiles, (n_problems * 4) as u64); // 2×2 tiles each
            for i in 0..n_problems {
                for r in 0..m {
                    assert_close(
                        &out[r * ld + i * n..r * ld + (i + 1) * n],
                        &expect_blocks[i][r * n..(r + 1) * n],
                        1e-4,
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "placement overflows")]
    fn strided_overflow_checked() {
        let a = vec![0.0f32; 4];
        let b = vec![0.0f32; 4];
        let problems = vec![GroupedProblem {
            m: 2,
            n: 2,
            k: 2,
            transb: false,
            alpha: 1.0,
            a: &a,
            b: &b,
        }];
        let mut out = vec![0.0f32; 3];
        grouped_sgemm_strided(
            &problems,
            &mut out,
            &[StridedOutput { offset: 0, ld: 2 }],
            GroupedConfig::default(),
            &NoEpilogue,
            &NoTransform,
        );
    }

    #[test]
    fn scheduler_visit_count_exact_per_tile() {
        // 3 problems of 64x64 with tile 64 -> 3 tiles, 3 visits.
        let a = vec![0.0f32; 64 * 4];
        let b = vec![0.0f32; 4 * 64];
        let problems: Vec<GroupedProblem<'_>> = (0..3)
            .map(|_| GroupedProblem {
                m: 64,
                n: 64,
                k: 4,
                transb: false,
                alpha: 1.0,
                a: &a,
                b: &b,
            })
            .collect();
        let mut cs: Vec<Vec<f32>> = (0..3).map(|_| vec![0.0; 64 * 64]).collect();
        let stats = grouped_sgemm(
            &problems,
            cs.iter_mut().map(|c| c.as_mut_slice()).collect(),
            GroupedConfig {
                scheduler: Scheduler::PerTile,
                ..Default::default()
            },
            &NoEpilogue,
            &NoTransform,
        );
        assert_eq!(stats.tiles, 3);
        assert_eq!(stats.scheduler_visits, 3);
    }
}
