//! Worker-keyed scratch arenas for the GEMM hot paths.
//!
//! One [`Scratch`] lives in a thread-local slot per pool worker (the rayon
//! shim's workers are persistent, so "per thread" *is* "per worker id"),
//! and **survives across launches**: a virtual CTA borrows its worker's
//! arena for the duration of one task, reuses it across every tile it
//! computes — the analogue of a threadblock's fixed shared-memory
//! allocation — and the next launch finds the buffers already at their
//! high-water marks. Buffers only ever grow, so the steady state performs
//! **zero heap allocations per tile, and zero per launch once shapes have
//! been seen**; the grow counter makes both properties assertable in tests
//! via [`crate::grouped::GroupedStats::scratch_grows`].
//!
//! Requested lengths are geometry-dependent — callers size panels from the
//! active microkernel's `mr×nr` tile (see [`crate::isa`]) — so switching
//! dispatch tiers mid-process at most ratchets a new high-water mark once;
//! the arenas themselves are geometry-agnostic byte pools.
//!
//! Borrow discipline: [`with_worker_scratch`] hands out the arena for the
//! span of one closure. The closure must not re-enter the parallel runtime
//! while holding it (every current caller is a leaf task); if a re-entrant
//! borrow ever happens anyway, the fallback is a fresh one-shot arena —
//! correct, just not amortized.

use std::cell::RefCell;

thread_local! {
    static WORKER_SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
}

/// Runs `f` with this worker's persistent scratch arena.
pub(crate) fn with_worker_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    WORKER_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        // Re-entrant borrow (nested GEMM on one worker): fall back to a
        // temporary arena rather than aliasing or panicking.
        Err(_) => f(&mut Scratch::new()),
    })
}

/// Reusable packing + accumulation buffers for one virtual CTA.
///
/// The f32 buffers serve the [`crate::isa`] family; the byte/scale/colsum
/// buffers serve the [`crate::lowp`] family (packed low-precision panels
/// are byte pools — per-kernel layouts are imposed by the packers, and the
/// `cvt` buffer stages one row's f16/bf16 conversion).
pub(crate) struct Scratch {
    a_pack: Vec<f32>,
    b_pack: Vec<f32>,
    tile: Vec<f32>,
    row_buf: Vec<f32>,
    lowp_a: Vec<u8>,
    lowp_b: Vec<u8>,
    scale_a: Vec<f32>,
    scale_b: Vec<f32>,
    colsum: Vec<i32>,
    cvt: Vec<u16>,
    grows: u64,
}

impl Scratch {
    pub(crate) fn new() -> Self {
        Self {
            a_pack: Vec::new(),
            b_pack: Vec::new(),
            tile: Vec::new(),
            row_buf: Vec::new(),
            lowp_a: Vec::new(),
            lowp_b: Vec::new(),
            scale_a: Vec::new(),
            scale_b: Vec::new(),
            colsum: Vec::new(),
            cvt: Vec::new(),
            grows: 0,
        }
    }

    /// Times any buffer had to grow. Stays flat once every shape in the
    /// problem set has been seen — the "zero allocations per tile" invariant.
    pub(crate) fn grow_count(&self) -> u64 {
        self.grows
    }

    /// Total f32-equivalent elements currently held across all buffers —
    /// the arena's high-water mark (buffers only ever grow), reported to
    /// telemetry. Sub-f32 buffers are rounded up to whole elements.
    pub(crate) fn high_water_elems(&self) -> usize {
        self.a_pack.len()
            + self.b_pack.len()
            + self.tile.len()
            + self.row_buf.len()
            + self.scale_a.len()
            + self.scale_b.len()
            + self.colsum.len()
            + (self.lowp_a.len() + self.lowp_b.len()).div_ceil(4)
            + (self.cvt.len() * 2).div_ceil(4)
    }

    /// Returns just the `A`-micropanel buffer at the requested length (the
    /// blocked-GEMM row-panel tasks pack only `A` per task; `B` is packed
    /// once per launch and shared).
    pub(crate) fn a_panels(&mut self, len: usize) -> &mut [f32] {
        grow(&mut self.a_pack, len, &mut self.grows);
        &mut self.a_pack[..len]
    }

    /// Returns `(a_pack, b_pack, tile, row_buf)` slices of at least the
    /// requested lengths, growing the backing buffers only on a new
    /// high-water mark. Contents are stale — callers overwrite fully.
    pub(crate) fn panels(
        &mut self,
        a_len: usize,
        b_len: usize,
        tile_len: usize,
        row_len: usize,
    ) -> (&mut [f32], &mut [f32], &mut [f32], &mut [f32]) {
        grow(&mut self.a_pack, a_len, &mut self.grows);
        grow(&mut self.b_pack, b_len, &mut self.grows);
        grow(&mut self.tile, tile_len, &mut self.grows);
        grow(&mut self.row_buf, row_len, &mut self.grows);
        (
            &mut self.a_pack[..a_len],
            &mut self.b_pack[..b_len],
            &mut self.tile[..tile_len],
            &mut self.row_buf[..row_len],
        )
    }

    /// Low-precision blocked-GEMM task buffers: `(a_bytes, scale_a,
    /// row_buf, cvt)` — the packed `A` byte panels, their per-row scales,
    /// and the f32/u16 staging rows for conversion.
    pub(crate) fn lowp_a_panels(
        &mut self,
        a_bytes: usize,
        sa_len: usize,
        row_len: usize,
        cvt_len: usize,
    ) -> (&mut [u8], &mut [f32], &mut [f32], &mut [u16]) {
        grow(&mut self.lowp_a, a_bytes, &mut self.grows);
        grow(&mut self.scale_a, sa_len, &mut self.grows);
        grow(&mut self.row_buf, row_len, &mut self.grows);
        grow(&mut self.cvt, cvt_len, &mut self.grows);
        (
            &mut self.lowp_a[..a_bytes],
            &mut self.scale_a[..sa_len],
            &mut self.row_buf[..row_len],
            &mut self.cvt[..cvt_len],
        )
    }

    /// Low-precision grouped-GEMM tile buffers: `(a_bytes, b_bytes, tile,
    /// row_buf, scale_a, scale_b, colsum, cvt)`.
    #[allow(clippy::too_many_arguments, clippy::type_complexity)] // one tile's full working set
    pub(crate) fn lowp_tile_panels(
        &mut self,
        a_bytes: usize,
        b_bytes: usize,
        tile_len: usize,
        row_len: usize,
        sa_len: usize,
        sb_len: usize,
        cs_len: usize,
        cvt_len: usize,
    ) -> (
        &mut [u8],
        &mut [u8],
        &mut [f32],
        &mut [f32],
        &mut [f32],
        &mut [f32],
        &mut [i32],
        &mut [u16],
    ) {
        grow(&mut self.lowp_a, a_bytes, &mut self.grows);
        grow(&mut self.lowp_b, b_bytes, &mut self.grows);
        grow(&mut self.tile, tile_len, &mut self.grows);
        grow(&mut self.row_buf, row_len, &mut self.grows);
        grow(&mut self.scale_a, sa_len, &mut self.grows);
        grow(&mut self.scale_b, sb_len, &mut self.grows);
        grow(&mut self.colsum, cs_len, &mut self.grows);
        grow(&mut self.cvt, cvt_len, &mut self.grows);
        (
            &mut self.lowp_a[..a_bytes],
            &mut self.lowp_b[..b_bytes],
            &mut self.tile[..tile_len],
            &mut self.row_buf[..row_len],
            &mut self.scale_a[..sa_len],
            &mut self.scale_b[..sb_len],
            &mut self.colsum[..cs_len],
            &mut self.cvt[..cvt_len],
        )
    }
}

fn grow<T: Default + Clone>(buf: &mut Vec<T>, len: usize, grows: &mut u64) {
    if buf.len() < len {
        // Geometric growth keeps the number of grows logarithmic even when
        // successive tiles ratchet the high-water mark up gradually.
        let target = len.max(buf.len() * 2);
        buf.resize(target, T::default());
        *grows += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_stops_growing() {
        let mut s = Scratch::new();
        s.panels(100, 200, 64, 32);
        let after_first = s.grow_count();
        assert!(after_first > 0);
        for _ in 0..1000 {
            let (a, b, t, r) = s.panels(100, 200, 64, 32);
            assert_eq!((a.len(), b.len(), t.len(), r.len()), (100, 200, 64, 32));
        }
        assert_eq!(s.grow_count(), after_first, "reuse must not reallocate");
    }

    #[test]
    fn smaller_requests_reuse_high_water() {
        let mut s = Scratch::new();
        s.panels(512, 512, 512, 512);
        let g = s.grow_count();
        s.panels(8, 8, 8, 8);
        assert_eq!(s.grow_count(), g);
    }
}
