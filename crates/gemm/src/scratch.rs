//! Worker-keyed scratch arenas for the GEMM hot paths.
//!
//! One [`Scratch`] lives in a thread-local slot per pool worker (the rayon
//! shim's workers are persistent, so "per thread" *is* "per worker id"),
//! and **survives across launches**: a virtual CTA borrows its worker's
//! arena for the duration of one task, reuses it across every tile it
//! computes — the analogue of a threadblock's fixed shared-memory
//! allocation — and the next launch finds the buffers already at their
//! high-water marks. Buffers only ever grow, so the steady state performs
//! **zero heap allocations per tile, and zero per launch once shapes have
//! been seen**; the grow counter makes both properties assertable in tests
//! via [`crate::grouped::GroupedStats::scratch_grows`].
//!
//! Requested lengths are geometry-dependent — callers size panels from the
//! active microkernel's `mr×nr` tile (see [`crate::isa`]) — so switching
//! dispatch tiers mid-process at most ratchets a new high-water mark once;
//! the arenas themselves are geometry-agnostic byte pools.
//!
//! Borrow discipline: [`with_worker_scratch`] hands out the arena for the
//! span of one closure. The closure must not re-enter the parallel runtime
//! while holding it (every current caller is a leaf task); if a re-entrant
//! borrow ever happens anyway, the fallback is a fresh one-shot arena —
//! correct, just not amortized.

use std::cell::RefCell;

thread_local! {
    static WORKER_SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
}

/// Runs `f` with this worker's persistent scratch arena.
pub(crate) fn with_worker_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    WORKER_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        // Re-entrant borrow (nested GEMM on one worker): fall back to a
        // temporary arena rather than aliasing or panicking.
        Err(_) => f(&mut Scratch::new()),
    })
}

/// Reusable packing + accumulation buffers for one virtual CTA.
pub(crate) struct Scratch {
    a_pack: Vec<f32>,
    b_pack: Vec<f32>,
    tile: Vec<f32>,
    row_buf: Vec<f32>,
    grows: u64,
}

impl Scratch {
    pub(crate) fn new() -> Self {
        Self {
            a_pack: Vec::new(),
            b_pack: Vec::new(),
            tile: Vec::new(),
            row_buf: Vec::new(),
            grows: 0,
        }
    }

    /// Times any buffer had to grow. Stays flat once every shape in the
    /// problem set has been seen — the "zero allocations per tile" invariant.
    pub(crate) fn grow_count(&self) -> u64 {
        self.grows
    }

    /// Total f32 elements currently held across all buffers — the arena's
    /// high-water mark (buffers only ever grow), reported to telemetry.
    pub(crate) fn high_water_elems(&self) -> usize {
        self.a_pack.len() + self.b_pack.len() + self.tile.len() + self.row_buf.len()
    }

    /// Returns just the `A`-micropanel buffer at the requested length (the
    /// blocked-GEMM row-panel tasks pack only `A` per task; `B` is packed
    /// once per launch and shared).
    pub(crate) fn a_panels(&mut self, len: usize) -> &mut [f32] {
        grow(&mut self.a_pack, len, &mut self.grows);
        &mut self.a_pack[..len]
    }

    /// Returns `(a_pack, b_pack, tile, row_buf)` slices of at least the
    /// requested lengths, growing the backing buffers only on a new
    /// high-water mark. Contents are stale — callers overwrite fully.
    pub(crate) fn panels(
        &mut self,
        a_len: usize,
        b_len: usize,
        tile_len: usize,
        row_len: usize,
    ) -> (&mut [f32], &mut [f32], &mut [f32], &mut [f32]) {
        grow(&mut self.a_pack, a_len, &mut self.grows);
        grow(&mut self.b_pack, b_len, &mut self.grows);
        grow(&mut self.tile, tile_len, &mut self.grows);
        grow(&mut self.row_buf, row_len, &mut self.grows);
        (
            &mut self.a_pack[..a_len],
            &mut self.b_pack[..b_len],
            &mut self.tile[..tile_len],
            &mut self.row_buf[..row_len],
        )
    }
}

fn grow(buf: &mut Vec<f32>, len: usize, grows: &mut u64) {
    if buf.len() < len {
        // Geometric growth keeps the number of grows logarithmic even when
        // successive tiles ratchet the high-water mark up gradually.
        let target = len.max(buf.len() * 2);
        buf.resize(target, 0.0);
        *grows += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_stops_growing() {
        let mut s = Scratch::new();
        s.panels(100, 200, 64, 32);
        let after_first = s.grow_count();
        assert!(after_first > 0);
        for _ in 0..1000 {
            let (a, b, t, r) = s.panels(100, 200, 64, 32);
            assert_eq!((a.len(), b.len(), t.len(), r.len()), (100, 200, 64, 32));
        }
        assert_eq!(s.grow_count(), after_first, "reuse must not reallocate");
    }

    #[test]
    fn smaller_requests_reuse_high_water() {
        let mut s = Scratch::new();
        s.panels(512, 512, 512, 512);
        let g = s.grow_count();
        s.panels(8, 8, 8, 8);
        assert_eq!(s.grow_count(), g);
    }
}
