//! Low-precision microkernel family — the [`crate::prec::Precision`] axis
//! of runtime dispatch.
//!
//! This is the measured CPU realization of the paper's §III.C SIMD2
//! `half2` path: packed panels are stored half-width (f16/bf16) or
//! quarter-width (int8) and expanded *in-register* inside the microkernel,
//! so the bytes streaming through the cache hierarchy shrink by 2–4× while
//! the accumulation stays f32 (or exact i32 for int8). Packing always uses
//! the best conversion hardware the host has (F16C `vcvtps2ph` for f16),
//! independent of the compute ISA tier — the software [`bt_tensor::half::f16`]
//! conversion is round-to-nearest-even and bitwise identical to the
//! hardware instruction, which keeps scalar and vector tiers comparable.
//!
//! Implementations, by precision × ISA tier:
//!
//! | precision | scalar (8×8)        | avx2 (8×8)                  | avx512 tier                         |
//! |-----------|---------------------|-----------------------------|-------------------------------------|
//! | `f16`     | sw convert + f32 acc| F16C `vcvtph2ps` + f32 FMA  | 16×32 `vfmadd231ph` (AVX512-FP16)   |
//! | `bf16`    | `<<16` widen + f32  | `vpmovzxwd`+`<<16` + f32 FMA| 16×16 `vpmovzxwd`+`<<16` + f32 FMA  |
//! | `int8`    | i32 dots            | 8×8 `pmaddwd` (i16 pairs)   | 16×16 `vpdpbusd` (AVX512-VNNI)      |
//!
//! Numeric contract (what the differential suite asserts):
//!
//! * Implementations with the same [`Chain`] are **bitwise identical** for
//!   identical operands: the packed codes are identical (one documented
//!   conversion per element), and every output element is one f32
//!   accumulation chain in `p`-order.
//! * `int8` is bitwise identical across **all three** tiers: quantized
//!   codes are identical, integer dots are exact, and dequantization is the
//!   fixed sequence `acc + (sa[i]·sb[j])·(dot as f32)` — three roundings in
//!   the same order everywhere.
//! * The AVX512-FP16 kernel accumulates in f16 within chunks of ≤ 128
//!   k-steps (promoted to f32 between chunks), so it is its own
//!   [`Chain::ChunkedF16`] class, compared by [`dot_error_bound`] only.
//!
//! int8 quantization scheme (symmetric, per-A-row / per-B-column):
//! `sa = rowmax/127` (1.0 when the row is all-zero/non-normal), code
//! `q = round_ties_even(x/sa)` clamped to ±127, NaN → 0. The VNNI kernel
//! needs unsigned A operands, so A codes are stored biased (`q+128` as u8,
//! zero-pad code 128) and the bias is removed exactly with per-column code
//! sums: `dot = acc_u − 128·colsum[j]`.

// Unsafe is confined to the `#[target_feature]` intrinsic kernels, one
// `asm!` kernel, and the raw-slice plumbing of the scalar kernels.
#![allow(unsafe_code)]

use crate::isa::Isa;
use crate::micro::SCALAR_FUSED_FMA;
use crate::prec::Precision;
use bt_tensor::half::f16;

/// Accumulation-chain class of a kernel. Implementations with equal chains
/// produce bitwise-identical stored elements for identical operands;
/// different chains are compared within [`dot_error_bound`] /
/// [`int8_dot_error_bound`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Chain {
    /// Convert to f32, fused multiply-add in `p`-order.
    FusedF32,
    /// Convert to f32, separate mul + add in `p`-order (scalar builds
    /// without guaranteed FMA).
    UnfusedF32,
    /// Exact i32 dot + fixed three-rounding dequantization.
    ExactInt,
    /// f16 accumulation in ≤128-step chunks, f32 between chunks (the
    /// AVX512-FP16 `vfmadd231ph` kernel). Tolerance-only comparisons.
    ChunkedF16,
}

/// The chain of the scalar f16/bf16 kernels, pinned at crate compile time
/// exactly like [`SCALAR_FUSED_FMA`].
const fn scalar_chain() -> Chain {
    if SCALAR_FUSED_FMA {
        Chain::FusedF32
    } else {
        Chain::UnfusedF32
    }
}

/// Storage layout of a packed low-precision `A` micropanel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AFmt {
    /// f16 bits duplicated into both halves of a dword: u32 at `p*mr + i`
    /// holding `h | (h << 16)` — one `vpbroadcastd` yields a 32-lane
    /// `h`-pair vector for `vfmadd231ph`.
    F16Dup,
    /// Plain f16 bits: u16 at `p*mr + i`.
    F16,
    /// bfloat16 bits: u16 at `p*mr + i`.
    Bf16,
    /// Biased int8 codes (`q+128`) in k-quads for `vpdpbusd`: u8 at
    /// `(p/4)*mr*4 + i*4 + p%4`, zero-pad code 128.
    U8Quads,
    /// Signed codes widened to i16 in k-pairs for `pmaddwd`: i16 at
    /// `(p/2)*mr*2 + i*2 + p%2`, zero-pad 0.
    I16Pairs,
    /// Plain signed codes: i8 at `p*mr + i`.
    I8,
}

/// Storage layout of a packed low-precision `B` micropanel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BFmt {
    /// f16 bits: u16 at `p*nr + j`.
    F16,
    /// bfloat16 bits: u16 at `p*nr + j`.
    Bf16,
    /// Signed codes in k-groups of `k_step`: i8 at
    /// `(p/ks)*nr*ks + j*ks + p%ks` (`ks = 1` degenerates to `p*nr + j`).
    I8Quads,
}

/// Raw low-precision kernel entry: `kq` is the number of packed k-groups
/// (`padded_k / k_step`); `acc[i*nr + j] +=` the dequantized dot. `sa`,
/// `sb`, `colsum` are only read by int8 kernels.
///
/// # Safety
/// `a`/`b` must cover the packed panel byte extents for `kq` groups, `acc`
/// must cover `mr*nr` f32, int8 kernels additionally need `sa`/`sb`/`colsum`
/// at `mr`/`nr`/`nr` — and the CPU must support the kernel's features.
type LowpKernelFn =
    unsafe fn(kq: usize, a: *const u8, b: *const u8, acc: *mut f32, sa: *const f32, sb: *const f32, colsum: *const i32);

/// One member of the low-precision kernel family: a precision × ISA
/// implementation with its geometry, packing formats and chain class.
/// Obtain instances from [`lowp_impl`] / [`resolve_lowp_kernel`].
pub struct LowpKernel {
    /// Storage precision of the packed panels.
    pub prec: Precision,
    /// ISA tier of the implementation.
    pub isa: Isa,
    /// Rows of the register tile.
    pub mr: usize,
    /// Columns of the register tile.
    pub nr: usize,
    /// k-group size of the packed layout (1, 2 or 4). Panels are padded to
    /// a multiple of this with neutral codes.
    pub k_step: usize,
    /// Accumulation-chain class (drives bitwise vs tolerance comparison).
    pub chain: Chain,
    a_fmt: AFmt,
    b_fmt: BFmt,
    func: LowpKernelFn,
}

impl LowpKernel {
    #[allow(clippy::too_many_arguments)] // the table constructor
    const fn new(
        prec: Precision,
        isa: Isa,
        mr: usize,
        nr: usize,
        k_step: usize,
        chain: Chain,
        a_fmt: AFmt,
        b_fmt: BFmt,
        func: LowpKernelFn,
    ) -> Self {
        Self {
            prec,
            isa,
            mr,
            nr,
            k_step,
            chain,
            a_fmt,
            b_fmt,
            func,
        }
    }

    /// `k` rounded up to a whole number of k-groups.
    pub fn padded_k(&self, k: usize) -> usize {
        k.div_ceil(self.k_step) * self.k_step
    }

    /// Bytes per packed `A` element.
    pub fn a_elem_bytes(&self) -> usize {
        match self.a_fmt {
            AFmt::F16Dup => 4,
            AFmt::F16 | AFmt::Bf16 | AFmt::I16Pairs => 2,
            AFmt::U8Quads | AFmt::I8 => 1,
        }
    }

    /// Bytes per packed `B` element.
    pub fn b_elem_bytes(&self) -> usize {
        match self.b_fmt {
            BFmt::F16 | BFmt::Bf16 => 2,
            BFmt::I8Quads => 1,
        }
    }

    /// Byte length of one packed `A` micropanel for depth `k`.
    pub fn a_panel_bytes(&self, k: usize) -> usize {
        self.padded_k(k) * self.mr * self.a_elem_bytes()
    }

    /// Byte length of one packed `B` micropanel for depth `k`.
    pub fn b_panel_bytes(&self, k: usize) -> usize {
        self.padded_k(k) * self.nr * self.b_elem_bytes()
    }

    /// Runs the kernel over `k` (unpadded) steps:
    /// `acc[i*nr + j] += dequant(Σ_p A[i,p]·B[p,j])`.
    ///
    /// # Panics
    /// Panics if a panel, the accumulator, or (for int8) a scale/colsum
    /// slice is shorter than the geometry requires.
    #[inline]
    #[allow(clippy::too_many_arguments)] // the full kernel operand set is the point
    pub fn run(&self, k: usize, a: &[u8], b: &[u8], acc: &mut [f32], sa: &[f32], sb: &[f32], colsum: &[i32]) {
        if k == 0 {
            return;
        }
        assert!(a.len() >= self.a_panel_bytes(k), "A micropanel too short");
        assert!(b.len() >= self.b_panel_bytes(k), "B micropanel too short");
        assert!(acc.len() >= self.mr * self.nr, "accumulator too short");
        if self.prec == Precision::Int8 {
            assert!(sa.len() >= self.mr, "A scales too short");
            assert!(sb.len() >= self.nr, "B scales too short");
            assert!(colsum.len() >= self.nr, "colsum too short");
        }
        let kq = self.padded_k(k) / self.k_step;
        // SAFETY: extents asserted above; the function pointer was only
        // handed out after `impl_detected` verified its CPU features.
        unsafe {
            (self.func)(
                kq,
                a.as_ptr(),
                b.as_ptr(),
                acc.as_mut_ptr(),
                sa.as_ptr(),
                sb.as_ptr(),
                colsum.as_ptr(),
            )
        }
    }
}

impl std::fmt::Debug for LowpKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LowpKernel")
            .field("prec", &self.prec)
            .field("isa", &self.isa)
            .field("mr", &self.mr)
            .field("nr", &self.nr)
            .field("k_step", &self.k_step)
            .field("chain", &self.chain)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Conversion helpers
// ---------------------------------------------------------------------------

/// f32 → f16 bits, round-to-nearest-even. Bitwise identical to hardware
/// `vcvtps2ph` (the slice variant below uses the instruction when present).
pub fn f16_bits(x: f32) -> u16 {
    f16::from_f32(x).to_bits()
}

/// f32 → bfloat16 bits, round-to-nearest-even on the discarded 16 bits.
/// NaNs are quieted and keep their top payload bits (mirroring the f16
/// conversion's NaN contract).
pub fn bf16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        return ((bits >> 16) as u16) | 0x0040;
    }
    ((bits + 0x7FFF + ((bits >> 16) & 1)) >> 16) as u16
}

/// Exact bfloat16 → f32 widening.
pub fn bf16_to_f32(bits: u16) -> f32 {
    f32::from_bits((bits as u32) << 16)
}

/// The int8 symmetric scale for a vector with absolute maximum `maxabs`:
/// `maxabs/127`, or 1.0 when that is zero/subnormal/non-finite (all-zero
/// rows quantize to all-zero codes either way; a non-normal scale would
/// poison the dequantization).
pub fn int8_scale(maxabs: f32) -> f32 {
    let s = maxabs / 127.0;
    if s.is_normal() {
        s
    } else {
        1.0
    }
}

/// Quantizes one value with the reciprocal scale: round-to-nearest-even,
/// clamped to ±127 (−128 is never produced), NaN → 0.
pub fn quantize_i8(x: f32, inv_scale: f32) -> i8 {
    // NaN propagates through clamp and saturates to 0 in the cast.
    (x * inv_scale).round_ties_even().clamp(-127.0, 127.0) as i8
}

/// Converts an f32 slice to f16 bits, round-to-nearest-even, using F16C
/// `vcvtps2ph` when the host has it (bitwise identical to the software
/// path — asserted by a unit test sweeping all rounding classes).
pub fn f32_to_f16_bits_slice(dst: &mut [u16], src: &[f32]) {
    assert!(dst.len() >= src.len());
    #[cfg(target_arch = "x86_64")]
    if is_x86_feature_detected!("f16c") {
        // SAFETY: f16c verified present on this CPU.
        unsafe { f16_cvt_slice_f16c(&mut dst[..src.len()], src) };
        return;
    }
    for (d, &x) in dst.iter_mut().zip(src) {
        *d = f16_bits(x);
    }
}

/// Converts an f32 slice to bfloat16 bits (round-to-nearest-even truncate —
/// an add and a shift per element, branch-free except for NaNs, so the
/// plain loop autovectorizes).
pub fn f32_to_bf16_bits_slice(dst: &mut [u16], src: &[f32]) {
    assert!(dst.len() >= src.len());
    for (d, &x) in dst.iter_mut().zip(src) {
        *d = bf16_bits(x);
    }
}

/// # Safety
/// CPU must support F16C; `dst.len() >= src.len()` (checked by the caller).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "f16c")]
unsafe fn f16_cvt_slice_f16c(dst: &mut [u16], src: &[f32]) {
    use std::arch::x86_64::*;
    let n = src.len();
    let chunks = n / 8;
    // SAFETY: each 8-lane load/store is within the slices' extents.
    unsafe {
        for c in 0..chunks {
            let v = _mm256_loadu_ps(src.as_ptr().add(c * 8));
            let h = _mm256_cvtps_ph::<_MM_FROUND_TO_NEAREST_INT>(v);
            _mm_storeu_si128(dst.as_mut_ptr().add(c * 8) as *mut _, h);
        }
    }
    for i in chunks * 8..n {
        dst[i] = f16_bits(src[i]);
    }
}

/// Absolute maximum of a slice, NaN entries skipped (like a fold over
/// `f32::max`, which returns the other operand on NaN) — the scale pass of
/// the int8 quantizer. Vectorized on AVX-512 hosts; same result either way
/// because `max` over the non-NaN values is order-independent.
pub fn maxabs_f32(src: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if is_x86_feature_detected!("avx512f") {
        // SAFETY: avx512f verified present.
        return unsafe { maxabs_avx512(src) };
    }
    src.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn maxabs_avx512(src: &[f32]) -> f32 {
    use std::arch::x86_64::*;
    let n = src.len();
    let mut c = 0;
    // SAFETY: every 16-lane load is within the slice's extent.
    let mut m = unsafe {
        let absmask = _mm512_set1_epi32(0x7FFF_FFFF);
        let mut acc = _mm512_setzero_ps();
        while c + 16 <= n {
            let x = _mm512_loadu_ps(src.as_ptr().add(c));
            let ax = _mm512_castsi512_ps(_mm512_and_si512(_mm512_castps_si512(x), absmask));
            // Operand order matters: vmaxps returns the SECOND source when
            // either is NaN, so a NaN |x| lane leaves `acc` untouched.
            acc = _mm512_max_ps(ax, acc);
            c += 16;
        }
        _mm512_reduce_max_ps(acc)
    };
    for &x in &src[c..] {
        m = m.max(x.abs());
    }
    m
}

/// Lane-wise `acc[j] = max(acc[j], |src[j]|)` — the streaming (row-major
/// friendly) form of the B-panel scale pass. NaN lanes are skipped, like
/// `f32::max`.
fn maxabs_lanes(acc: &mut [f32], src: &[f32], have512: bool) {
    debug_assert_eq!(acc.len(), src.len());
    #[cfg(target_arch = "x86_64")]
    if have512 {
        // SAFETY: caller verified avx512f.
        unsafe { maxabs_lanes_avx512(acc, src) };
        return;
    }
    let _ = have512;
    for (a, &x) in acc.iter_mut().zip(src) {
        *a = a.max(x.abs());
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn maxabs_lanes_avx512(acc: &mut [f32], src: &[f32]) {
    use std::arch::x86_64::*;
    let absmask = _mm512_set1_epi32(0x7FFF_FFFF);
    let mut done = 0;
    while done < src.len() {
        let len = 16.min(src.len() - done);
        let m = ((1u32 << len) - 1) as __mmask16;
        // SAFETY: masked ops touch exactly `len` in-bounds lanes.
        unsafe {
            let x = _mm512_maskz_loadu_ps(m, src.as_ptr().add(done));
            let a = _mm512_maskz_loadu_ps(m, acc.as_ptr().add(done));
            let ax = _mm512_castsi512_ps(_mm512_and_si512(_mm512_castps_si512(x), absmask));
            let r = _mm512_max_ps(ax, a); // NaN |x| lane → keeps `a`
            _mm512_mask_storeu_ps(acc.as_mut_ptr().add(done), m, r);
        }
        done += len;
    }
}

/// Quantizes a slice with one reciprocal scale — bitwise identical to
/// [`quantize_i8`] per element (the AVX-512 path clamps in the float
/// domain, which commutes with round-to-nearest-even at ±127.5, zeroes NaN
/// lanes the way `as i8` does, then does one RNE convert).
pub fn quantize_i8_slice(dst: &mut [i8], src: &[f32], inv_scale: f32) {
    assert!(dst.len() >= src.len());
    #[cfg(target_arch = "x86_64")]
    if is_x86_feature_detected!("avx512f") {
        // SAFETY: avx512f verified present.
        unsafe { quantize_i8_slice_avx512(&mut dst[..src.len()], src, inv_scale) };
        return;
    }
    for (d, &x) in dst.iter_mut().zip(src) {
        *d = quantize_i8(x, inv_scale);
    }
}

/// One 16-lane quantize step: clamp(t) then RNE convert, NaN → 0.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[inline]
unsafe fn quantize16(t: std::arch::x86_64::__m512) -> std::arch::x86_64::__m128i {
    use std::arch::x86_64::*;
    // Pure register ops under the caller's avx512f guarantee.
    let ord = _mm512_cmp_ps_mask::<_CMP_ORD_Q>(t, t);
    let clamped = _mm512_min_ps(_mm512_max_ps(t, _mm512_set1_ps(-127.0)), _mm512_set1_ps(127.0));
    let z = _mm512_maskz_mov_ps(ord, clamped);
    _mm512_cvtepi32_epi8(_mm512_cvtps_epi32(z))
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn quantize_i8_slice_avx512(dst: &mut [i8], src: &[f32], inv_scale: f32) {
    use std::arch::x86_64::*;
    let n = src.len();
    // SAFETY: full 16-lane loads/stores stay in bounds; the tail uses
    // masked loads and a bounced store.
    unsafe {
        let vinv = _mm512_set1_ps(inv_scale);
        let mut c = 0;
        while c + 16 <= n {
            let x = _mm512_loadu_ps(src.as_ptr().add(c));
            let q = quantize16(_mm512_mul_ps(x, vinv));
            _mm_storeu_si128(dst.as_mut_ptr().add(c) as *mut _, q);
            c += 16;
        }
        if c < n {
            let len = n - c;
            let m = ((1u32 << len) - 1) as __mmask16;
            let x = _mm512_maskz_loadu_ps(m, src.as_ptr().add(c));
            let q = quantize16(_mm512_mul_ps(x, vinv));
            let mut out = [0i8; 16];
            _mm_storeu_si128(out.as_mut_ptr() as *mut _, q);
            dst[c..].copy_from_slice(&out[..len]);
        }
    }
}

/// Quantizes with per-lane reciprocal scales (the B panel's per-column
/// symmetric scales). Bitwise identical to [`quantize_i8`] per lane.
fn quantize_i8_lanes(dst: &mut [i8], src: &[f32], inv: &[f32], have512: bool) {
    debug_assert!(dst.len() == src.len() && src.len() == inv.len());
    #[cfg(target_arch = "x86_64")]
    if have512 {
        // SAFETY: caller verified avx512f.
        unsafe { quantize_i8_lanes_avx512(dst, src, inv) };
        return;
    }
    let _ = have512;
    for ((d, &x), &v) in dst.iter_mut().zip(src).zip(inv) {
        *d = quantize_i8(x, v);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn quantize_i8_lanes_avx512(dst: &mut [i8], src: &[f32], inv: &[f32]) {
    use std::arch::x86_64::*;
    let mut done = 0;
    while done < src.len() {
        let len = 16.min(src.len() - done);
        let m = ((1u32 << len) - 1) as __mmask16;
        // SAFETY: masked loads touch exactly `len` in-bounds lanes; the
        // byte store bounces through a stack buffer.
        unsafe {
            let x = _mm512_maskz_loadu_ps(m, src.as_ptr().add(done));
            let v = _mm512_maskz_loadu_ps(m, inv.as_ptr().add(done));
            let q = quantize16(_mm512_mul_ps(x, v));
            let mut out = [0i8; 16];
            _mm_storeu_si128(out.as_mut_ptr() as *mut _, q);
            dst[done..done + len].copy_from_slice(&out[..len]);
        }
        done += len;
    }
}

// Packed panels live in byte arenas (no alignment guarantee — kernels use
// unaligned loads throughout); multi-byte codes are little-endian, the
// native order of every ISA with an intrinsic kernel.
#[inline(always)]
fn put_u16(dst: &mut [u8], idx: usize, v: u16) {
    dst[idx * 2..idx * 2 + 2].copy_from_slice(&v.to_le_bytes());
}

#[inline(always)]
fn put_u32(dst: &mut [u8], idx: usize, v: u32) {
    dst[idx * 4..idx * 4 + 4].copy_from_slice(&v.to_le_bytes());
}

#[inline(always)]
fn get_u16(src: &[u8], idx: usize) -> u16 {
    u16::from_le_bytes([src[idx * 2], src[idx * 2 + 1]])
}

/// Stores a run of u16 codes at consecutive indices starting at `idx0` —
/// one contiguous byte copy on little-endian hosts (panels are LE).
#[inline(always)]
fn store_u16_run(dst: &mut [u8], idx0: usize, vals: &[u16]) {
    #[cfg(target_endian = "little")]
    {
        // SAFETY: every bit pattern is a valid u8; the length is exact.
        let (_, bytes, _) = unsafe { vals.align_to::<u8>() };
        dst[idx0 * 2..idx0 * 2 + bytes.len()].copy_from_slice(bytes);
    }
    #[cfg(not(target_endian = "little"))]
    for (j, &v) in vals.iter().enumerate() {
        put_u16(dst, idx0 + j, v);
    }
}

// ---------------------------------------------------------------------------
// Packing
// ---------------------------------------------------------------------------

/// Packs one staged `A` row (`row.len() == k`) into lane `i` of a packed
/// panel, returning the row's dequantization scale (1.0 for float
/// precisions). `cvt` is conversion scratch of at least `k` u16.
pub fn pack_a_row_lowp(kern: &LowpKernel, dst: &mut [u8], row: &[f32], i: usize, cvt: &mut [u16]) -> f32 {
    let k = row.len();
    let mr = kern.mr;
    debug_assert!(dst.len() >= kern.a_panel_bytes(k));
    debug_assert!(i < mr);
    match kern.a_fmt {
        AFmt::F16Dup => {
            f32_to_f16_bits_slice(cvt, row);
            for (p, &h) in cvt[..k].iter().enumerate() {
                let h = h as u32;
                put_u32(dst, p * mr + i, h | (h << 16));
            }
            1.0
        }
        AFmt::F16 => {
            f32_to_f16_bits_slice(cvt, row);
            for (p, &h) in cvt[..k].iter().enumerate() {
                put_u16(dst, p * mr + i, h);
            }
            1.0
        }
        AFmt::Bf16 => {
            f32_to_bf16_bits_slice(cvt, row);
            for (p, &h) in cvt[..k].iter().enumerate() {
                put_u16(dst, p * mr + i, h);
            }
            1.0
        }
        AFmt::U8Quads | AFmt::I16Pairs | AFmt::I8 => {
            let sa = int8_scale(maxabs_f32(row));
            let inv = sa.recip();
            let pk = kern.padded_k(k);
            // Quantize the row in vectorized chunks, then scatter the codes
            // into the strided layout (byte moves only; `+128` biasing is a
            // sign-bit flip).
            let mut q = [0i8; 256];
            let mut p0 = 0usize;
            while p0 < k {
                let len = q.len().min(k - p0);
                quantize_i8_slice(&mut q[..len], &row[p0..p0 + len], inv);
                match kern.a_fmt {
                    AFmt::U8Quads => {
                        for (o, &qv) in q[..len].iter().enumerate() {
                            let p = p0 + o;
                            dst[(p / 4) * mr * 4 + i * 4 + p % 4] = (qv as u8) ^ 0x80;
                        }
                    }
                    AFmt::I16Pairs => {
                        for (o, &qv) in q[..len].iter().enumerate() {
                            let p = p0 + o;
                            put_u16(dst, (p / 2) * mr * 2 + i * 2 + p % 2, qv as i16 as u16);
                        }
                    }
                    _ => {
                        for (o, &qv) in q[..len].iter().enumerate() {
                            dst[(p0 + o) * mr + i] = qv as u8;
                        }
                    }
                }
                p0 += len;
            }
            match kern.a_fmt {
                AFmt::U8Quads => {
                    for p in k..pk {
                        dst[(p / 4) * mr * 4 + i * 4 + p % 4] = 128;
                    }
                }
                AFmt::I16Pairs => {
                    for p in k..pk {
                        put_u16(dst, (p / 2) * mr * 2 + i * 2 + p % 2, 0);
                    }
                }
                _ => {}
            }
            sa
        }
    }
}

/// Writes neutral codes into pad lane `i` (rows `r..mr` of a short strip)
/// across the whole padded-`k` extent. The matching scale is 1.0.
pub fn pack_a_pad_row_lowp(kern: &LowpKernel, dst: &mut [u8], i: usize, k: usize) {
    let mr = kern.mr;
    let pk = kern.padded_k(k);
    match kern.a_fmt {
        AFmt::F16Dup => {
            for p in 0..pk {
                put_u32(dst, p * mr + i, 0);
            }
        }
        AFmt::F16 | AFmt::Bf16 => {
            for p in 0..pk {
                put_u16(dst, p * mr + i, 0);
            }
        }
        AFmt::U8Quads => {
            for p in 0..pk {
                dst[(p / 4) * mr * 4 + i * 4 + p % 4] = 128;
            }
        }
        AFmt::I16Pairs => {
            for p in 0..pk {
                put_u16(dst, (p / 2) * mr * 2 + i * 2 + p % 2, 0);
            }
        }
        AFmt::I8 => {
            for p in 0..pk {
                dst[p * mr + i] = 0;
            }
        }
    }
}

/// Low-precision counterpart of [`crate::micro::pack_a_panel`]: packs rows
/// `row0..row0+r` of a row-major `m×k` matrix (`k×m` when `trans`) into one
/// micropanel, converting each row through `row_buf` (≥ `k` f32) and `cvt`
/// (≥ `k` u16) scratch, and records per-row scales in `sa[..mr]`. Every
/// lane — including pads — is overwritten.
#[allow(clippy::too_many_arguments)] // geometry params are the point
pub fn pack_a_panel_lowp(
    kern: &LowpKernel,
    dst: &mut [u8],
    sa: &mut [f32],
    src: &[f32],
    trans: bool,
    row0: usize,
    r: usize,
    m: usize,
    k: usize,
    row_buf: &mut [f32],
    cvt: &mut [u16],
) {
    debug_assert!(r <= kern.mr);
    debug_assert!(sa.len() >= kern.mr);
    for i in 0..r {
        let row: &[f32] = if trans {
            // src is k×m: A[row, p] = src[p*m + row].
            for p in 0..k {
                row_buf[p] = src[p * m + row0 + i];
            }
            &row_buf[..k]
        } else {
            // Row-major rows are already contiguous — no staging copy.
            &src[(row0 + i) * k..(row0 + i) * k + k]
        };
        sa[i] = pack_a_row_lowp(kern, dst, row, i, cvt);
    }
    for (i, s) in sa.iter_mut().enumerate().take(kern.mr).skip(r) {
        pack_a_pad_row_lowp(kern, dst, i, k);
        *s = 1.0;
    }
}

/// Low-precision counterpart of [`crate::micro::pack_b_panel`]: packs
/// columns `col0..col0+c` of a row-major `k×n` matrix (`n×k` when `trans`)
/// into one micropanel, recording per-column scales in `sb[..nr]` and (for
/// int8) per-column code sums in `colsum[..nr]`. Every lane — including
/// pads — is overwritten; pad columns get scale 1.0 and colsum 0.
#[allow(clippy::too_many_arguments)] // geometry params are the point
pub fn pack_b_panel_lowp(
    kern: &LowpKernel,
    dst: &mut [u8],
    sb: &mut [f32],
    colsum: &mut [i32],
    src: &[f32],
    trans: bool,
    col0: usize,
    c: usize,
    n: usize,
    k: usize,
    cvt: &mut [u16],
) {
    let nr = kern.nr;
    debug_assert!(c <= nr);
    debug_assert!(dst.len() >= kern.b_panel_bytes(k));
    debug_assert!(sb.len() >= nr && colsum.len() >= nr);
    match kern.b_fmt {
        BFmt::F16 | BFmt::Bf16 => {
            let is_f16 = kern.b_fmt == BFmt::F16;
            if trans {
                // Columns are contiguous in the source: convert each whole
                // column vector, then scatter down the panel.
                for j in 0..c {
                    let col = &src[(col0 + j) * k..(col0 + j) * k + k];
                    if is_f16 {
                        f32_to_f16_bits_slice(cvt, col);
                    } else {
                        f32_to_bf16_bits_slice(cvt, col);
                    }
                    for (p, &h) in cvt[..k].iter().enumerate() {
                        put_u16(dst, p * nr + j, h);
                    }
                }
                for j in c..nr {
                    for p in 0..k {
                        put_u16(dst, p * nr + j, 0);
                    }
                }
            } else {
                // Rows are contiguous: convert each k-step's row segment.
                // The destination lanes `p*nr..p*nr+c` are consecutive u16s,
                // so the converted row stores as one contiguous image.
                for p in 0..k {
                    let seg = &src[p * n + col0..p * n + col0 + c];
                    if is_f16 {
                        f32_to_f16_bits_slice(cvt, seg);
                    } else {
                        f32_to_bf16_bits_slice(cvt, seg);
                    }
                    store_u16_run(dst, p * nr, &cvt[..c]);
                    for j in c..nr {
                        put_u16(dst, p * nr + j, 0);
                    }
                }
            }
            sb[..nr].fill(1.0);
            colsum[..nr].fill(0);
        }
        BFmt::I8Quads => {
            let ks = kern.k_step;
            let pk = kern.padded_k(k);
            #[cfg(target_arch = "x86_64")]
            let have512 = is_x86_feature_detected!("avx512f");
            #[cfg(not(target_arch = "x86_64"))]
            let have512 = false;
            // Pass 1: per-column absolute maxima → symmetric scales. Walk
            // the source in its native order (columns when `trans`, rows
            // otherwise) so a large-k panel streams instead of fetching a
            // fresh cache line per element.
            let mut inv = [0.0f32; crate::micro::NR_MAX];
            if trans {
                for j in 0..c {
                    let col = &src[(col0 + j) * k..(col0 + j) * k + k];
                    sb[j] = int8_scale(maxabs_f32(col));
                    inv[j] = sb[j].recip();
                }
            } else {
                let mut maxabs = [0.0f32; crate::micro::NR_MAX];
                for p in 0..k {
                    maxabs_lanes(&mut maxabs[..c], &src[p * n + col0..p * n + col0 + c], have512);
                }
                for j in 0..c {
                    sb[j] = int8_scale(maxabs[j]);
                    inv[j] = sb[j].recip();
                }
            }
            sb[c..nr].fill(1.0);
            // Pass 2: quantize (vectorized), scatter into k-groups,
            // accumulate code sums.
            colsum[..nr].fill(0);
            if trans {
                let mut q = [0i8; 256];
                for j in 0..c {
                    let col = &src[(col0 + j) * k..(col0 + j) * k + k];
                    let mut sum = 0i32;
                    let mut p0 = 0usize;
                    while p0 < k {
                        let len = q.len().min(k - p0);
                        quantize_i8_slice(&mut q[..len], &col[p0..p0 + len], inv[j]);
                        for (o, &qv) in q[..len].iter().enumerate() {
                            let p = p0 + o;
                            dst[(p / ks) * nr * ks + p % ks + j * ks] = qv as u8;
                            sum += qv as i32;
                        }
                        p0 += len;
                    }
                    colsum[j] = sum;
                }
                for p in 0..k {
                    let base = (p / ks) * nr * ks + p % ks;
                    for j in c..nr {
                        dst[base + j * ks] = 0;
                    }
                }
            } else {
                let mut q = [0i8; crate::micro::NR_MAX];
                for p in 0..k {
                    let seg = &src[p * n + col0..p * n + col0 + c];
                    quantize_i8_lanes(&mut q[..c], seg, &inv[..c], have512);
                    let base = (p / ks) * nr * ks + p % ks;
                    for j in 0..c {
                        dst[base + j * ks] = q[j] as u8;
                        colsum[j] += q[j] as i32;
                    }
                    for j in c..nr {
                        dst[base + j * ks] = 0;
                    }
                }
            }
            for p in k..pk {
                let base = (p / ks) * nr * ks + p % ks;
                for j in 0..nr {
                    dst[base + j * ks] = 0;
                }
            }
        }
    }
}

/// Decodes element `(p, i)` of a packed `A` panel: the numeric value for
/// float precisions, the signed quantized code for int8. Test/debug aid.
pub fn a_panel_code(kern: &LowpKernel, panel: &[u8], p: usize, i: usize) -> f32 {
    let mr = kern.mr;
    match kern.a_fmt {
        AFmt::F16Dup => {
            let lo = get_u16(panel, (p * mr + i) * 2);
            f16::from_bits(lo).to_f32()
        }
        AFmt::F16 => f16::from_bits(get_u16(panel, p * mr + i)).to_f32(),
        AFmt::Bf16 => bf16_to_f32(get_u16(panel, p * mr + i)),
        AFmt::U8Quads => (panel[(p / 4) * mr * 4 + i * 4 + p % 4] as i32 - 128) as f32,
        AFmt::I16Pairs => get_u16(panel, (p / 2) * mr * 2 + i * 2 + p % 2) as i16 as f32,
        AFmt::I8 => panel[p * mr + i] as i8 as f32,
    }
}

/// Decodes element `(p, j)` of a packed `B` panel (see [`a_panel_code`]).
pub fn b_panel_code(kern: &LowpKernel, panel: &[u8], p: usize, j: usize) -> f32 {
    let nr = kern.nr;
    match kern.b_fmt {
        BFmt::F16 => f16::from_bits(get_u16(panel, p * nr + j)).to_f32(),
        BFmt::Bf16 => bf16_to_f32(get_u16(panel, p * nr + j)),
        BFmt::I8Quads => {
            let ks = kern.k_step;
            panel[(p / ks) * nr * ks + j * ks + p % ks] as i8 as f32
        }
    }
}

// ---------------------------------------------------------------------------
// Scalar kernels (universal fallbacks; one per precision)
// ---------------------------------------------------------------------------

/// One contraction step with the mode pinned by the const parameter (the
/// same discipline as [`crate::micro`]'s scalar kernel).
#[inline(always)]
fn contract<const FUSED: bool>(a: f32, b: f32, c: f32) -> f32 {
    if FUSED {
        a.mul_add(b, c)
    } else {
        a * b + c
    }
}

unsafe fn f16_scalar_8x8<const FUSED: bool>(
    kq: usize,
    a: *const u8,
    b: *const u8,
    acc: *mut f32,
    _sa: *const f32,
    _sb: *const f32,
    _cs: *const i32,
) {
    // SAFETY: caller guarantees the panel/accumulator extents.
    let (a, b, acc) = unsafe {
        (
            std::slice::from_raw_parts(a, kq * 8 * 2),
            std::slice::from_raw_parts(b, kq * 8 * 2),
            std::slice::from_raw_parts_mut(acc, 64),
        )
    };
    for p in 0..kq {
        let mut bp = [0.0f32; 8];
        for (j, v) in bp.iter_mut().enumerate() {
            *v = f16::from_bits(get_u16(b, p * 8 + j)).to_f32();
        }
        for i in 0..8 {
            let ai = f16::from_bits(get_u16(a, p * 8 + i)).to_f32();
            for j in 0..8 {
                acc[i * 8 + j] = contract::<FUSED>(ai, bp[j], acc[i * 8 + j]);
            }
        }
    }
}

unsafe fn bf16_scalar_8x8<const FUSED: bool>(
    kq: usize,
    a: *const u8,
    b: *const u8,
    acc: *mut f32,
    _sa: *const f32,
    _sb: *const f32,
    _cs: *const i32,
) {
    // SAFETY: caller guarantees the panel/accumulator extents.
    let (a, b, acc) = unsafe {
        (
            std::slice::from_raw_parts(a, kq * 8 * 2),
            std::slice::from_raw_parts(b, kq * 8 * 2),
            std::slice::from_raw_parts_mut(acc, 64),
        )
    };
    for p in 0..kq {
        let mut bp = [0.0f32; 8];
        for (j, v) in bp.iter_mut().enumerate() {
            *v = bf16_to_f32(get_u16(b, p * 8 + j));
        }
        for i in 0..8 {
            let ai = bf16_to_f32(get_u16(a, p * 8 + i));
            for j in 0..8 {
                acc[i * 8 + j] = contract::<FUSED>(ai, bp[j], acc[i * 8 + j]);
            }
        }
    }
}

unsafe fn int8_scalar_8x8(
    kq: usize,
    a: *const u8,
    b: *const u8,
    acc: *mut f32,
    sa: *const f32,
    sb: *const f32,
    _cs: *const i32,
) {
    // SAFETY: caller guarantees the panel/accumulator/scale extents.
    let (a, b, acc, sa, sb) = unsafe {
        (
            std::slice::from_raw_parts(a, kq * 8),
            std::slice::from_raw_parts(b, kq * 8),
            std::slice::from_raw_parts_mut(acc, 64),
            std::slice::from_raw_parts(sa, 8),
            std::slice::from_raw_parts(sb, 8),
        )
    };
    // Exact integer dots first; the fixed three-rounding dequantization
    // (`acc + (sa·sb)·dot`) happens once per element, identical to the
    // vector kernels' epilogues.
    let mut dots = [0i32; 64];
    for p in 0..kq {
        for i in 0..8 {
            let ai = a[p * 8 + i] as i8 as i32;
            for j in 0..8 {
                dots[i * 8 + j] += ai * (b[p * 8 + j] as i8 as i32);
            }
        }
    }
    for i in 0..8 {
        for j in 0..8 {
            acc[i * 8 + j] += (sa[i] * sb[j]) * dots[i * 8 + j] as f32;
        }
    }
}

// ---------------------------------------------------------------------------
// AVX2 kernels
// ---------------------------------------------------------------------------

/// # Safety
/// [`LowpKernelFn`] extents; CPU must support AVX2+FMA+F16C.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma", enable = "f16c")]
unsafe fn f16_avx2_8x8(
    kq: usize,
    a: *const u8,
    b: *const u8,
    acc: *mut f32,
    _sa: *const f32,
    _sb: *const f32,
    _cs: *const i32,
) {
    use std::arch::x86_64::*;
    // SAFETY: extents guaranteed by the caller contract.
    unsafe {
        let mut c = [_mm256_setzero_ps(); 8];
        for (i, row) in c.iter_mut().enumerate() {
            *row = _mm256_loadu_ps(acc.add(i * 8));
        }
        let mut abuf = [0.0f32; 8];
        for p in 0..kq {
            let bv = _mm256_cvtph_ps(_mm_loadu_si128(b.add(p * 16) as *const _));
            let av = _mm256_cvtph_ps(_mm_loadu_si128(a.add(p * 16) as *const _));
            _mm256_storeu_ps(abuf.as_mut_ptr(), av);
            for (i, row) in c.iter_mut().enumerate() {
                *row = _mm256_fmadd_ps(_mm256_set1_ps(abuf[i]), bv, *row);
            }
        }
        for (i, row) in c.iter().enumerate() {
            _mm256_storeu_ps(acc.add(i * 8), *row);
        }
    }
}

/// # Safety
/// [`LowpKernelFn`] extents; CPU must support AVX2+FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn bf16_avx2_8x8(
    kq: usize,
    a: *const u8,
    b: *const u8,
    acc: *mut f32,
    _sa: *const f32,
    _sb: *const f32,
    _cs: *const i32,
) {
    use std::arch::x86_64::*;
    // SAFETY: extents guaranteed by the caller contract.
    unsafe {
        let mut c = [_mm256_setzero_ps(); 8];
        for (i, row) in c.iter_mut().enumerate() {
            *row = _mm256_loadu_ps(acc.add(i * 8));
        }
        let widen = |p: *const u8| {
            _mm256_castsi256_ps(_mm256_slli_epi32::<16>(_mm256_cvtepu16_epi32(_mm_loadu_si128(
                p as *const _,
            ))))
        };
        let mut abuf = [0.0f32; 8];
        for p in 0..kq {
            let bv = widen(b.add(p * 16));
            let av = widen(a.add(p * 16));
            _mm256_storeu_ps(abuf.as_mut_ptr(), av);
            for (i, row) in c.iter_mut().enumerate() {
                *row = _mm256_fmadd_ps(_mm256_set1_ps(abuf[i]), bv, *row);
            }
        }
        for (i, row) in c.iter().enumerate() {
            _mm256_storeu_ps(acc.add(i * 8), *row);
        }
    }
}

/// AVX2 int8: A as sign-extended i16 k-pairs, `pmaddwd` against
/// sign-extended B codes. Products are ≤ 127·127 each, so the i16-pair sum
/// ≤ 32258 never saturates (`maddubs`-style u8×i8 would).
///
/// # Safety
/// [`LowpKernelFn`] extents; CPU must support AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn int8_avx2_8x8(
    kq: usize,
    a: *const u8,
    b: *const u8,
    acc: *mut f32,
    sa: *const f32,
    sb: *const f32,
    _cs: *const i32,
) {
    use std::arch::x86_64::*;
    // SAFETY: extents guaranteed by the caller contract.
    unsafe {
        let mut c = [_mm256_setzero_si256(); 8];
        for q in 0..kq {
            // One k-pair group: B is 8 columns × 2 codes = 16 i8.
            let b16 = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.add(q * 16) as *const _));
            for (i, row) in c.iter_mut().enumerate() {
                let av = _mm256_set1_epi32((a.add(q * 32 + i * 4) as *const i32).read_unaligned());
                *row = _mm256_add_epi32(*row, _mm256_madd_epi16(av, b16));
            }
        }
        let sbv = _mm256_loadu_ps(sb);
        for (i, row) in c.iter().enumerate() {
            let scale = _mm256_mul_ps(_mm256_set1_ps(*sa.add(i)), sbv);
            let val = _mm256_mul_ps(scale, _mm256_cvtepi32_ps(*row));
            let accv = _mm256_add_ps(_mm256_loadu_ps(acc.add(i * 8)), val);
            _mm256_storeu_ps(acc.add(i * 8), accv);
        }
    }
}

// ---------------------------------------------------------------------------
// AVX-512 kernels
// ---------------------------------------------------------------------------

/// AVX512-FP16 16×32 kernel: native `vfmadd231ph` on 32-lane f16 vectors,
/// A broadcast as pre-duplicated dword pairs. Accumulates in f16 within
/// chunks of ≤128 k-steps, promoting each chunk into the f32 accumulator
/// via `vcvtph2ps` — bounding the f16 accumulation error at the chunk
/// length ([`Chain::ChunkedF16`], covered by [`dot_error_bound`]).
///
/// Written in inline asm because the AVX512-FP16 intrinsics are not yet
/// stable; `asm!` with explicit register clobbers is.
///
/// # Safety
/// [`LowpKernelFn`] extents with `kq > 0`; CPU must support AVX512-FP16.
#[cfg(target_arch = "x86_64")]
unsafe fn f16_avx512fp16_16x32(
    kq: usize,
    a: *const u8,
    b: *const u8,
    acc: *mut f32,
    _sa: *const f32,
    _sb: *const f32,
    _cs: *const i32,
) {
    debug_assert!(kq > 0); // `run` guards k == 0
                           // SAFETY: caller guarantees extents and the avx512fp16 feature. The asm
                           // clobbers zmm0–17 only, keeps the stack untouched, and walks a/b
                           // exactly kq 64-byte groups.
    unsafe {
        std::arch::asm!(
            // Outer loop (label 2): one chunk of ≤128 k-steps in f16
            // accumulators zmm0–15, then a promotion pass into `acc`.
            "2:",
            "vpxorq zmm0, zmm0, zmm0", "vpxorq zmm1, zmm1, zmm1",
            "vpxorq zmm2, zmm2, zmm2", "vpxorq zmm3, zmm3, zmm3",
            "vpxorq zmm4, zmm4, zmm4", "vpxorq zmm5, zmm5, zmm5",
            "vpxorq zmm6, zmm6, zmm6", "vpxorq zmm7, zmm7, zmm7",
            "vpxorq zmm8, zmm8, zmm8", "vpxorq zmm9, zmm9, zmm9",
            "vpxorq zmm10, zmm10, zmm10", "vpxorq zmm11, zmm11, zmm11",
            "vpxorq zmm12, zmm12, zmm12", "vpxorq zmm13, zmm13, zmm13",
            "vpxorq zmm14, zmm14, zmm14", "vpxorq zmm15, zmm15, zmm15",
            "mov {cn}, {rem}",
            "cmp {cn}, 128",
            "cmova {cn}, {c128}",
            "sub {rem}, {cn}",
            // Inner loop (label 3): one k-step = one 32-lane B row (64 B)
            // and 16 dup-dword A broadcasts.
            "3:",
            "vmovups zmm16, zmmword ptr [{b}]",
            "vpbroadcastd zmm17, dword ptr [{a}]",
            "vfmadd231ph zmm0, zmm17, zmm16",
            "vpbroadcastd zmm17, dword ptr [{a} + 4]",
            "vfmadd231ph zmm1, zmm17, zmm16",
            "vpbroadcastd zmm17, dword ptr [{a} + 8]",
            "vfmadd231ph zmm2, zmm17, zmm16",
            "vpbroadcastd zmm17, dword ptr [{a} + 12]",
            "vfmadd231ph zmm3, zmm17, zmm16",
            "vpbroadcastd zmm17, dword ptr [{a} + 16]",
            "vfmadd231ph zmm4, zmm17, zmm16",
            "vpbroadcastd zmm17, dword ptr [{a} + 20]",
            "vfmadd231ph zmm5, zmm17, zmm16",
            "vpbroadcastd zmm17, dword ptr [{a} + 24]",
            "vfmadd231ph zmm6, zmm17, zmm16",
            "vpbroadcastd zmm17, dword ptr [{a} + 28]",
            "vfmadd231ph zmm7, zmm17, zmm16",
            "vpbroadcastd zmm17, dword ptr [{a} + 32]",
            "vfmadd231ph zmm8, zmm17, zmm16",
            "vpbroadcastd zmm17, dword ptr [{a} + 36]",
            "vfmadd231ph zmm9, zmm17, zmm16",
            "vpbroadcastd zmm17, dword ptr [{a} + 40]",
            "vfmadd231ph zmm10, zmm17, zmm16",
            "vpbroadcastd zmm17, dword ptr [{a} + 44]",
            "vfmadd231ph zmm11, zmm17, zmm16",
            "vpbroadcastd zmm17, dword ptr [{a} + 48]",
            "vfmadd231ph zmm12, zmm17, zmm16",
            "vpbroadcastd zmm17, dword ptr [{a} + 52]",
            "vfmadd231ph zmm13, zmm17, zmm16",
            "vpbroadcastd zmm17, dword ptr [{a} + 56]",
            "vfmadd231ph zmm14, zmm17, zmm16",
            "vpbroadcastd zmm17, dword ptr [{a} + 60]",
            "vfmadd231ph zmm15, zmm17, zmm16",
            "add {a}, 64",
            "add {b}, 64",
            "dec {cn}",
            "jnz 3b",
            // Promotion: row r holds 32 f16 sums; widen each 16-lane half
            // with vcvtph2ps and add into acc[r*32..r*32+32].
            "mov {cn}, {acc}",
            "vcvtph2ps zmm16, ymm0", "vextractf64x4 ymm17, zmm0, 1", "vcvtph2ps zmm17, ymm17",
            "vaddps zmm16, zmm16, [{cn}]", "vmovups [{cn}], zmm16",
            "vaddps zmm17, zmm17, [{cn}+64]", "vmovups [{cn}+64], zmm17",
            "vcvtph2ps zmm16, ymm1", "vextractf64x4 ymm17, zmm1, 1", "vcvtph2ps zmm17, ymm17",
            "vaddps zmm16, zmm16, [{cn}+128]", "vmovups [{cn}+128], zmm16",
            "vaddps zmm17, zmm17, [{cn}+192]", "vmovups [{cn}+192], zmm17",
            "vcvtph2ps zmm16, ymm2", "vextractf64x4 ymm17, zmm2, 1", "vcvtph2ps zmm17, ymm17",
            "vaddps zmm16, zmm16, [{cn}+256]", "vmovups [{cn}+256], zmm16",
            "vaddps zmm17, zmm17, [{cn}+320]", "vmovups [{cn}+320], zmm17",
            "vcvtph2ps zmm16, ymm3", "vextractf64x4 ymm17, zmm3, 1", "vcvtph2ps zmm17, ymm17",
            "vaddps zmm16, zmm16, [{cn}+384]", "vmovups [{cn}+384], zmm16",
            "vaddps zmm17, zmm17, [{cn}+448]", "vmovups [{cn}+448], zmm17",
            "vcvtph2ps zmm16, ymm4", "vextractf64x4 ymm17, zmm4, 1", "vcvtph2ps zmm17, ymm17",
            "vaddps zmm16, zmm16, [{cn}+512]", "vmovups [{cn}+512], zmm16",
            "vaddps zmm17, zmm17, [{cn}+576]", "vmovups [{cn}+576], zmm17",
            "vcvtph2ps zmm16, ymm5", "vextractf64x4 ymm17, zmm5, 1", "vcvtph2ps zmm17, ymm17",
            "vaddps zmm16, zmm16, [{cn}+640]", "vmovups [{cn}+640], zmm16",
            "vaddps zmm17, zmm17, [{cn}+704]", "vmovups [{cn}+704], zmm17",
            "vcvtph2ps zmm16, ymm6", "vextractf64x4 ymm17, zmm6, 1", "vcvtph2ps zmm17, ymm17",
            "vaddps zmm16, zmm16, [{cn}+768]", "vmovups [{cn}+768], zmm16",
            "vaddps zmm17, zmm17, [{cn}+832]", "vmovups [{cn}+832], zmm17",
            "vcvtph2ps zmm16, ymm7", "vextractf64x4 ymm17, zmm7, 1", "vcvtph2ps zmm17, ymm17",
            "vaddps zmm16, zmm16, [{cn}+896]", "vmovups [{cn}+896], zmm16",
            "vaddps zmm17, zmm17, [{cn}+960]", "vmovups [{cn}+960], zmm17",
            "vcvtph2ps zmm16, ymm8", "vextractf64x4 ymm17, zmm8, 1", "vcvtph2ps zmm17, ymm17",
            "vaddps zmm16, zmm16, [{cn}+1024]", "vmovups [{cn}+1024], zmm16",
            "vaddps zmm17, zmm17, [{cn}+1088]", "vmovups [{cn}+1088], zmm17",
            "vcvtph2ps zmm16, ymm9", "vextractf64x4 ymm17, zmm9, 1", "vcvtph2ps zmm17, ymm17",
            "vaddps zmm16, zmm16, [{cn}+1152]", "vmovups [{cn}+1152], zmm16",
            "vaddps zmm17, zmm17, [{cn}+1216]", "vmovups [{cn}+1216], zmm17",
            "vcvtph2ps zmm16, ymm10", "vextractf64x4 ymm17, zmm10, 1", "vcvtph2ps zmm17, ymm17",
            "vaddps zmm16, zmm16, [{cn}+1280]", "vmovups [{cn}+1280], zmm16",
            "vaddps zmm17, zmm17, [{cn}+1344]", "vmovups [{cn}+1344], zmm17",
            "vcvtph2ps zmm16, ymm11", "vextractf64x4 ymm17, zmm11, 1", "vcvtph2ps zmm17, ymm17",
            "vaddps zmm16, zmm16, [{cn}+1408]", "vmovups [{cn}+1408], zmm16",
            "vaddps zmm17, zmm17, [{cn}+1472]", "vmovups [{cn}+1472], zmm17",
            "vcvtph2ps zmm16, ymm12", "vextractf64x4 ymm17, zmm12, 1", "vcvtph2ps zmm17, ymm17",
            "vaddps zmm16, zmm16, [{cn}+1536]", "vmovups [{cn}+1536], zmm16",
            "vaddps zmm17, zmm17, [{cn}+1600]", "vmovups [{cn}+1600], zmm17",
            "vcvtph2ps zmm16, ymm13", "vextractf64x4 ymm17, zmm13, 1", "vcvtph2ps zmm17, ymm17",
            "vaddps zmm16, zmm16, [{cn}+1664]", "vmovups [{cn}+1664], zmm16",
            "vaddps zmm17, zmm17, [{cn}+1728]", "vmovups [{cn}+1728], zmm17",
            "vcvtph2ps zmm16, ymm14", "vextractf64x4 ymm17, zmm14, 1", "vcvtph2ps zmm17, ymm17",
            "vaddps zmm16, zmm16, [{cn}+1792]", "vmovups [{cn}+1792], zmm16",
            "vaddps zmm17, zmm17, [{cn}+1856]", "vmovups [{cn}+1856], zmm17",
            "vcvtph2ps zmm16, ymm15", "vextractf64x4 ymm17, zmm15, 1", "vcvtph2ps zmm17, ymm17",
            "vaddps zmm16, zmm16, [{cn}+1920]", "vmovups [{cn}+1920], zmm16",
            "vaddps zmm17, zmm17, [{cn}+1984]", "vmovups [{cn}+1984], zmm17",
            "test {rem}, {rem}",
            "jnz 2b",
            rem = inout(reg) kq => _,
            cn = out(reg) _,
            c128 = in(reg) 128usize,
            a = inout(reg) a => _,
            b = inout(reg) b => _,
            acc = in(reg) acc,
            out("zmm0") _, out("zmm1") _, out("zmm2") _, out("zmm3") _,
            out("zmm4") _, out("zmm5") _, out("zmm6") _, out("zmm7") _,
            out("zmm8") _, out("zmm9") _, out("zmm10") _, out("zmm11") _,
            out("zmm12") _, out("zmm13") _, out("zmm14") _, out("zmm15") _,
            out("zmm16") _, out("zmm17") _,
            options(nostack)
        );
    }
}

/// # Safety
/// [`LowpKernelFn`] extents; CPU must support AVX-512F.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn bf16_avx512_16x16(
    kq: usize,
    a: *const u8,
    b: *const u8,
    acc: *mut f32,
    _sa: *const f32,
    _sb: *const f32,
    _cs: *const i32,
) {
    use std::arch::x86_64::*;
    // SAFETY: extents guaranteed by the caller contract.
    unsafe {
        let mut c = [_mm512_setzero_ps(); 16];
        for (i, row) in c.iter_mut().enumerate() {
            *row = _mm512_loadu_ps(acc.add(i * 16));
        }
        // Widen 16 bf16 codes to f32: zero-extend to dwords, shift into the
        // high half. Exact — bf16 is the top half of an f32.
        let widen = |p: *const u8| {
            _mm512_castsi512_ps(_mm512_slli_epi32::<16>(_mm512_cvtepu16_epi32(_mm256_loadu_si256(
                p as *const _,
            ))))
        };
        let mut abuf = [0.0f32; 16];
        for p in 0..kq {
            let bv = widen(b.add(p * 32));
            let av = widen(a.add(p * 32));
            _mm512_storeu_ps(abuf.as_mut_ptr(), av);
            for (i, row) in c.iter_mut().enumerate() {
                *row = _mm512_fmadd_ps(_mm512_set1_ps(abuf[i]), bv, *row);
            }
        }
        for (i, row) in c.iter().enumerate() {
            _mm512_storeu_ps(acc.add(i * 16), *row);
        }
    }
}

/// AVX512-VNNI int8: `vpdpbusd` consumes unsigned A × signed B k-quads, so
/// A codes are stored biased (`q+128`); the bias is removed exactly in the
/// epilogue with the per-column code sums (`dot = acc_u − 128·colsum[j]`).
///
/// # Safety
/// [`LowpKernelFn`] extents; CPU must support AVX-512F/BW/VNNI.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "avx512bw", enable = "avx512vnni")]
unsafe fn int8_avx512vnni_16x16(
    kq: usize,
    a: *const u8,
    b: *const u8,
    acc: *mut f32,
    sa: *const f32,
    sb: *const f32,
    colsum: *const i32,
) {
    use std::arch::x86_64::*;
    // SAFETY: extents guaranteed by the caller contract.
    unsafe {
        let mut c = [_mm512_setzero_si512(); 16];
        for q in 0..kq {
            // One k-quad group: B is 16 columns × 4 codes = 64 i8.
            let bv = _mm512_loadu_si512(b.add(q * 64) as *const _);
            for (i, row) in c.iter_mut().enumerate() {
                let av = _mm512_set1_epi32((a.add(q * 64 + i * 4) as *const i32).read_unaligned());
                *row = _mm512_dpbusd_epi32(*row, av, bv);
            }
        }
        let csv = _mm512_loadu_si512(colsum as *const _);
        let corr = _mm512_slli_epi32::<7>(csv); // 128·colsum
        let sbv = _mm512_loadu_ps(sb);
        for (i, row) in c.iter().enumerate() {
            let dot = _mm512_sub_epi32(*row, corr);
            let scale = _mm512_mul_ps(_mm512_set1_ps(*sa.add(i)), sbv);
            let val = _mm512_mul_ps(scale, _mm512_cvtepi32_ps(dot));
            let accv = _mm512_add_ps(_mm512_loadu_ps(acc.add(i * 16)), val);
            _mm512_storeu_ps(acc.add(i * 16), accv);
        }
    }
}

// ---------------------------------------------------------------------------
// Kernel table, detection, resolution
// ---------------------------------------------------------------------------

static F16_SCALAR: LowpKernel = LowpKernel::new(
    Precision::F16,
    Isa::Scalar,
    8,
    8,
    1,
    scalar_chain(),
    AFmt::F16,
    BFmt::F16,
    f16_scalar_8x8::<SCALAR_FUSED_FMA>,
);

static BF16_SCALAR: LowpKernel = LowpKernel::new(
    Precision::Bf16,
    Isa::Scalar,
    8,
    8,
    1,
    scalar_chain(),
    AFmt::Bf16,
    BFmt::Bf16,
    bf16_scalar_8x8::<SCALAR_FUSED_FMA>,
);

static INT8_SCALAR: LowpKernel = LowpKernel::new(
    Precision::Int8,
    Isa::Scalar,
    8,
    8,
    1,
    Chain::ExactInt,
    AFmt::I8,
    BFmt::I8Quads,
    int8_scalar_8x8,
);

#[cfg(target_arch = "x86_64")]
static F16_AVX2: LowpKernel = LowpKernel::new(
    Precision::F16,
    Isa::Avx2,
    8,
    8,
    1,
    Chain::FusedF32,
    AFmt::F16,
    BFmt::F16,
    f16_avx2_8x8,
);

#[cfg(target_arch = "x86_64")]
static BF16_AVX2: LowpKernel = LowpKernel::new(
    Precision::Bf16,
    Isa::Avx2,
    8,
    8,
    1,
    Chain::FusedF32,
    AFmt::Bf16,
    BFmt::Bf16,
    bf16_avx2_8x8,
);

#[cfg(target_arch = "x86_64")]
static INT8_AVX2: LowpKernel = LowpKernel::new(
    Precision::Int8,
    Isa::Avx2,
    8,
    8,
    2,
    Chain::ExactInt,
    AFmt::I16Pairs,
    BFmt::I8Quads,
    int8_avx2_8x8,
);

#[cfg(target_arch = "x86_64")]
static F16_AVX512: LowpKernel = LowpKernel::new(
    Precision::F16,
    Isa::Avx512,
    16,
    32,
    1,
    Chain::ChunkedF16,
    AFmt::F16Dup,
    BFmt::F16,
    f16_avx512fp16_16x32,
);

#[cfg(target_arch = "x86_64")]
static BF16_AVX512: LowpKernel = LowpKernel::new(
    Precision::Bf16,
    Isa::Avx512,
    16,
    16,
    1,
    Chain::FusedF32,
    AFmt::Bf16,
    BFmt::Bf16,
    bf16_avx512_16x16,
);

#[cfg(target_arch = "x86_64")]
static INT8_AVX512: LowpKernel = LowpKernel::new(
    Precision::Int8,
    Isa::Avx512,
    16,
    16,
    4,
    Chain::ExactInt,
    AFmt::U8Quads,
    BFmt::I8Quads,
    int8_avx512vnni_16x16,
);

/// Whether this host can run the `prec × isa` implementation. F32 rows are
/// always `false` — that precision is served by [`crate::isa`]'s family.
fn impl_detected(prec: Precision, isa: Isa) -> bool {
    match (prec, isa) {
        (Precision::F32, _) => false,
        (_, Isa::Scalar) => true,
        #[cfg(target_arch = "x86_64")]
        (Precision::F16, Isa::Avx2) => {
            is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") && is_x86_feature_detected!("f16c")
        }
        #[cfg(target_arch = "x86_64")]
        (Precision::F16, Isa::Avx512) => is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512fp16"),
        #[cfg(target_arch = "x86_64")]
        (Precision::Bf16, Isa::Avx2) => is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"),
        #[cfg(target_arch = "x86_64")]
        (Precision::Bf16, Isa::Avx512) => is_x86_feature_detected!("avx512f"),
        #[cfg(target_arch = "x86_64")]
        (Precision::Int8, Isa::Avx2) => is_x86_feature_detected!("avx2"),
        #[cfg(target_arch = "x86_64")]
        (Precision::Int8, Isa::Avx512) => {
            is_x86_feature_detected!("avx512f")
                && is_x86_feature_detected!("avx512bw")
                && is_x86_feature_detected!("avx512vnni")
        }
        #[cfg(not(target_arch = "x86_64"))]
        _ => false,
    }
}

/// The `prec × isa` implementation, or `None` when this host cannot run it
/// (or `prec` is F32 — that axis row belongs to [`crate::isa`]).
pub fn lowp_impl(prec: Precision, isa: Isa) -> Option<&'static LowpKernel> {
    if !impl_detected(prec, isa) {
        return None;
    }
    match (prec, isa) {
        (Precision::F16, Isa::Scalar) => Some(&F16_SCALAR),
        (Precision::Bf16, Isa::Scalar) => Some(&BF16_SCALAR),
        (Precision::Int8, Isa::Scalar) => Some(&INT8_SCALAR),
        #[cfg(target_arch = "x86_64")]
        (Precision::F16, Isa::Avx2) => Some(&F16_AVX2),
        #[cfg(target_arch = "x86_64")]
        (Precision::Bf16, Isa::Avx2) => Some(&BF16_AVX2),
        #[cfg(target_arch = "x86_64")]
        (Precision::Int8, Isa::Avx2) => Some(&INT8_AVX2),
        #[cfg(target_arch = "x86_64")]
        (Precision::F16, Isa::Avx512) => Some(&F16_AVX512),
        #[cfg(target_arch = "x86_64")]
        (Precision::Bf16, Isa::Avx512) => Some(&BF16_AVX512),
        #[cfg(target_arch = "x86_64")]
        (Precision::Int8, Isa::Avx512) => Some(&INT8_AVX512),
        _ => None,
    }
}

/// The ISA tiers with an available implementation of `prec` on this host.
/// Always contains [`Isa::Scalar`] for the low precisions; empty for F32.
pub fn lowp_impl_isas(prec: Precision) -> Vec<Isa> {
    Isa::ALL.into_iter().filter(|&i| impl_detected(prec, i)).collect()
}

/// Resolves the active ISA tier against a precision's implementation set
/// (pure — unit-testable without faking CPUID). The best implementation
/// *not above* the requested tier wins: a `BYTE_GEMM_ISA=scalar` pin stays
/// scalar, while a wide request degrades to the widest available
/// implementation with a human-readable warning.
pub fn resolve_lowp_tier(prec: Precision, requested: Isa, available: &[Isa]) -> (Isa, Option<String>) {
    if available.contains(&requested) {
        return (requested, None);
    }
    let best = available
        .iter()
        .copied()
        .filter(|&i| i <= requested)
        .max()
        .unwrap_or(Isa::Scalar);
    (
        best,
        Some(format!(
            "no {} implementation at ISA tier `{}` on this host; degrading to `{}` for {}",
            prec.name(),
            requested.name(),
            best.name(),
            prec.name(),
        )),
    )
}

/// The low-precision kernel for a precision at (or degraded below) the
/// given ISA tier — `None` exactly when `prec` is F32, meaning "use the
/// [`crate::isa`] f32 family". Degradation warns once per `prec × isa`
/// pair through [`bt_obs::warn_once`].
pub fn resolve_lowp_kernel(prec: Precision, isa: Isa) -> Option<&'static LowpKernel> {
    if prec == Precision::F32 {
        return None;
    }
    let available = lowp_impl_isas(prec);
    let (selected, warning) = resolve_lowp_tier(prec, isa, &available);
    if let Some(w) = warning {
        bt_obs::warn_once(degrade_warn_key(prec, isa), &format!("bt-gemm: {w}"));
    }
    lowp_impl(prec, selected)
}

/// `warn_once` deduplication key for a degraded `prec × isa` resolution
/// (the key must be `'static`, so the combinations are enumerated).
fn degrade_warn_key(prec: Precision, isa: Isa) -> &'static str {
    match (prec, isa) {
        (Precision::F16, Isa::Scalar) => "bt-gemm.prec.f16.scalar",
        (Precision::F16, Isa::Avx2) => "bt-gemm.prec.f16.avx2",
        (Precision::F16, Isa::Avx512) => "bt-gemm.prec.f16.avx512",
        (Precision::Bf16, Isa::Scalar) => "bt-gemm.prec.bf16.scalar",
        (Precision::Bf16, Isa::Avx2) => "bt-gemm.prec.bf16.avx2",
        (Precision::Bf16, Isa::Avx512) => "bt-gemm.prec.bf16.avx512",
        (Precision::Int8, Isa::Scalar) => "bt-gemm.prec.int8.scalar",
        (Precision::Int8, Isa::Avx2) => "bt-gemm.prec.int8.avx2",
        (Precision::Int8, Isa::Avx512) => "bt-gemm.prec.int8.avx512",
        (Precision::F32, _) => "bt-gemm.prec.f32",
    }
}

/// Counts packed panel bytes written for a precision — the byte-traffic
/// telemetry the precision axis exists to shrink.
pub(crate) fn count_pack_bytes(prec: Precision, bytes: u64) {
    bt_obs::counter(&format!("gemm.lowp.pack_bytes.{}", prec.name())).add(bytes);
}

// ---------------------------------------------------------------------------
// Documented accuracy bounds (what the differential suite asserts)
// ---------------------------------------------------------------------------

/// Absolute error bound for one dequantized dot product of depth `k` with
/// `sum_abs = Σ_p |a_p·b_p|` (computed on the *converted* operands), versus
/// an f64 reference on the same converted operands.
///
/// * `f32`: plain f32 accumulation — `S·k·2⁻²³`.
/// * `f16`: operand conversion (2 roundings per product at ≤ 2⁻¹¹ relative)
///   plus at most `min(k, 128)` steps of f16 accumulation per chunk —
///   `S·(min(k,128)+2)·2⁻¹¹`.
/// * `bf16`: operand conversion at ≤ 2⁻⁸ relative per element (·1.01 slack
///   for the product of two roundings) plus f32 accumulation —
///   `S·(2⁻⁸·1.01 + k·2⁻²³)`.
///
/// A `1e-8` absolute floor covers zero-sum cases. int8 error depends on the
/// scales, not `sum_abs` — use [`int8_dot_error_bound`].
pub fn dot_error_bound(prec: Precision, k: usize, sum_abs: f64) -> f64 {
    let kf = k.max(1) as f64;
    let rel = match prec {
        Precision::F32 => kf * 2f64.powi(-23),
        Precision::F16 => (kf.min(128.0) + 2.0) * 2f64.powi(-11),
        Precision::Bf16 => 2f64.powi(-8) * 1.01 + kf * 2f64.powi(-23),
        Precision::Int8 => panic!("int8 bound depends on scales: use int8_dot_error_bound"),
    };
    sum_abs * rel + 1e-8
}

/// Absolute error bound for one int8-quantized dot product versus the f64
/// dot of the unquantized operands. Per k-step, each operand is off by at
/// most half a quantization step (`scale/2`), giving
/// `Σ_p (sa·|b_p|/2 + sb·|a_p|/2 + sa·sb/4)`; the `·1.01` covers the three
/// f32 dequantization roundings and the `1e-6` relative + `1e-8` absolute
/// floors cover accumulation of the reference itself.
pub fn int8_dot_error_bound(a_row: &[f32], b_col: &[f32], sa: f32, sb: f32) -> f64 {
    let (sa, sb) = (sa as f64, sb as f64);
    let mut quant = 0.0f64;
    let mut sum_abs = 0.0f64;
    for (&a, &b) in a_row.iter().zip(b_col) {
        let (a, b) = (a as f64, b as f64);
        quant += sa * b.abs() / 2.0 + sb * a.abs() / 2.0 + sa * sb / 4.0;
        sum_abs += (a * b).abs();
    }
    quant * 1.01 + sum_abs * 1e-6 + 1e-8
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOWP: [Precision; 3] = [Precision::F16, Precision::Bf16, Precision::Int8];

    #[test]
    fn scalar_impl_exists_for_every_low_precision() {
        for prec in LOWP {
            let k = lowp_impl(prec, Isa::Scalar).expect("scalar impl is universal");
            assert_eq!((k.prec, k.isa), (prec, Isa::Scalar));
            assert!(lowp_impl_isas(prec).contains(&Isa::Scalar));
        }
        assert!(lowp_impl(Precision::F32, Isa::Scalar).is_none());
        assert!(lowp_impl_isas(Precision::F32).is_empty());
    }

    #[test]
    fn resolve_degrades_below_request_with_warning() {
        // Only scalar available: a wide request degrades and warns.
        let (isa, w) = resolve_lowp_tier(Precision::F16, Isa::Avx512, &[Isa::Scalar]);
        assert_eq!(isa, Isa::Scalar);
        let w = w.expect("degradation must warn");
        assert!(w.contains("f16") && w.contains("avx512") && w.contains("scalar"));
        // Exact availability: no warning.
        let (isa, w) = resolve_lowp_tier(Precision::Int8, Isa::Avx2, &[Isa::Scalar, Isa::Avx2]);
        assert_eq!(isa, Isa::Avx2);
        assert!(w.is_none());
        // Never resolve *above* the request: a scalar pin stays scalar even
        // when wider implementations exist.
        let (isa, _) = resolve_lowp_tier(Precision::Bf16, Isa::Scalar, &[Isa::Scalar, Isa::Avx512]);
        assert_eq!(isa, Isa::Scalar);
    }

    #[test]
    fn f32_resolves_to_no_lowp_kernel() {
        for isa in Isa::ALL {
            assert!(resolve_lowp_kernel(Precision::F32, isa).is_none());
        }
    }

    #[test]
    fn hardware_f16_conversion_matches_software_bitwise() {
        // Sweep values exercising every rounding class: normals, ties,
        // subnormals, overflow, zero, infinity, NaN payloads.
        let mut vals: Vec<f32> = vec![
            0.0,
            -0.0,
            1.0,
            -1.0,
            1.0 + (2.0f32).powi(-11), // tie
            1.0 + 3.0 * (2.0f32).powi(-11),
            65504.0,
            65520.0, // overflow tie
            1e-7,    // subnormal range
            5.96e-8,
            1e-10, // underflow
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
        ];
        let mut x = 1.0e-9f32;
        while x < 1.0e6 {
            vals.push(x);
            vals.push(-x);
            x *= 1.7;
        }
        let mut hw = vec![0u16; vals.len()];
        f32_to_f16_bits_slice(&mut hw, &vals);
        for (&v, &h) in vals.iter().zip(&hw) {
            let sw = f16_bits(v);
            if v.is_nan() {
                // NaN payload choice may legitimately differ per path; both
                // must still be NaN.
                assert!(f16::from_bits(h).is_nan() && f16::from_bits(sw).is_nan());
            } else {
                assert_eq!(h, sw, "hw vs sw f16 conversion diverged at {v}");
            }
        }
    }

    #[test]
    fn bf16_round_to_nearest_even() {
        // 1 + 2^-8 ties between 1.0 and the next bf16 (1 + 2^-7): even wins.
        assert_eq!(bf16_to_f32(bf16_bits(1.0 + (2.0f32).powi(-8))), 1.0);
        // 1 + 3·2^-8 ties upward to 1 + 2^-6.
        assert_eq!(
            bf16_to_f32(bf16_bits(1.0 + 3.0 * (2.0f32).powi(-8))),
            1.0 + (2.0f32).powi(-6)
        );
        // bf16 values are exact fixed points.
        for v in [1.0f32, -2.5, 0.15625, 3.0e20, -7.0e-30] {
            let r = bf16_to_f32(bf16_bits(v));
            assert_eq!(bf16_bits(r), bf16_bits(v));
        }
        // NaN stays NaN, infinity stays infinity.
        assert!(bf16_to_f32(bf16_bits(f32::NAN)).is_nan());
        assert_eq!(bf16_to_f32(bf16_bits(f32::INFINITY)), f32::INFINITY);
    }

    #[test]
    fn quantization_edge_cases() {
        assert_eq!(int8_scale(0.0), 1.0, "all-zero row must keep a usable scale");
        assert_eq!(int8_scale(f32::NAN), 1.0);
        let s = int8_scale(127.0);
        assert_eq!(s, 1.0);
        assert_eq!(quantize_i8(127.0, 1.0), 127);
        assert_eq!(quantize_i8(-127.0, 1.0), -127);
        assert_eq!(quantize_i8(-1000.0, 1.0), -127, "clamp keeps -128 unreachable");
        assert_eq!(quantize_i8(f32::NAN, 1.0), 0);
        assert_eq!(quantize_i8(0.5, 1.0), 0, "ties to even");
        assert_eq!(quantize_i8(1.5, 1.0), 2, "ties to even");
    }

    /// Packs A and B panels for `kern` from small row-major operands and
    /// runs the kernel once; returns the dequantized `mr×nr` accumulator.
    fn pack_and_run(kern: &LowpKernel, a: &[f32], b: &[f32], m: usize, n: usize, k: usize) -> Vec<f32> {
        let mut a_panel = vec![0xA5u8; kern.a_panel_bytes(k)];
        let mut b_panel = vec![0xA5u8; kern.b_panel_bytes(k)];
        let mut sa = vec![f32::NAN; kern.mr];
        let mut sb = vec![f32::NAN; kern.nr];
        let mut colsum = vec![i32::MAX; kern.nr];
        let mut row_buf = vec![0.0f32; k];
        let mut cvt = vec![0u16; k.max(kern.nr)];
        pack_a_panel_lowp(
            kern,
            &mut a_panel,
            &mut sa,
            a,
            false,
            0,
            m,
            m,
            k,
            &mut row_buf,
            &mut cvt,
        );
        pack_b_panel_lowp(kern, &mut b_panel, &mut sb, &mut colsum, b, false, 0, n, n, k, &mut cvt);
        let mut acc = vec![0.0f32; kern.mr * kern.nr];
        kern.run(k, &a_panel, &b_panel, &mut acc, &sa, &sb, &colsum);
        acc
    }

    #[test]
    fn every_available_impl_matches_its_scalar_tier() {
        // m×k · k×n with strips shorter than every tile: exercises pad
        // lanes in both panels plus the k-group padding of int8 layouts.
        let (m, n, k) = (5usize, 6usize, 13usize);
        let a: Vec<f32> = (0..m * k).map(|i| ((i as f32) * 0.37).sin()).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i as f32) * 0.51).cos()).collect();
        for prec in LOWP {
            let scalar = lowp_impl(prec, Isa::Scalar).unwrap();
            let reference = pack_and_run(scalar, &a, &b, m, n, k);
            for isa in lowp_impl_isas(prec) {
                let kern = lowp_impl(prec, isa).unwrap();
                let acc = pack_and_run(kern, &a, &b, m, n, k);
                for i in 0..m {
                    for j in 0..n {
                        let got = acc[i * kern.nr + j];
                        let want = reference[i * scalar.nr + j];
                        if kern.chain == scalar.chain {
                            assert_eq!(
                                got.to_bits(),
                                want.to_bits(),
                                "{prec}/{isa} ({i},{j}): equal chains must be bitwise"
                            );
                        } else {
                            // Cross-chain: both within the documented bound
                            // of each other (twice the one-sided bound).
                            let sum_abs: f64 = (0..k).map(|p| (a[i * k + p] as f64 * b[p * n + j] as f64).abs()).sum();
                            let bound = 2.0 * dot_error_bound(prec, k, sum_abs);
                            assert!(
                                ((got - want) as f64).abs() <= bound,
                                "{prec}/{isa} ({i},{j}): {got} vs {want} (bound {bound})"
                            );
                        }
                    }
                }
                // Pad lanes must have computed exact zeros.
                for i in m..kern.mr {
                    for j in 0..kern.nr {
                        assert_eq!(acc[i * kern.nr + j], 0.0, "{prec}/{isa} pad row {i}");
                    }
                }
                for i in 0..kern.mr {
                    for j in n..kern.nr {
                        assert_eq!(acc[i * kern.nr + j], 0.0, "{prec}/{isa} pad col {j}");
                    }
                }
            }
        }
    }

    #[test]
    fn scalar_tiers_track_the_true_product_within_bounds() {
        let (m, n, k) = (4usize, 5usize, 29usize);
        let a: Vec<f32> = (0..m * k).map(|i| ((i as f32) * 0.71).sin() * 3.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i as f32) * 0.29).cos() * 2.0).collect();
        for prec in LOWP {
            let kern = lowp_impl(prec, Isa::Scalar).unwrap();
            let acc = pack_and_run(kern, &a, &b, m, n, k);
            for i in 0..m {
                for j in 0..n {
                    let exact: f64 = (0..k).map(|p| a[i * k + p] as f64 * b[p * n + j] as f64).sum();
                    let bound = match prec {
                        Precision::Int8 => {
                            let col: Vec<f32> = (0..k).map(|p| b[p * n + j]).collect();
                            let sa = int8_scale((0..k).fold(0.0f32, |mx, p| mx.max(a[i * k + p].abs())));
                            let sb = int8_scale(col.iter().fold(0.0f32, |mx, &x| mx.max(x.abs())));
                            int8_dot_error_bound(&a[i * k..i * k + k], &col, sa, sb)
                        }
                        _ => {
                            let sum_abs: f64 = (0..k).map(|p| (a[i * k + p] as f64 * b[p * n + j] as f64).abs()).sum();
                            dot_error_bound(prec, k, sum_abs)
                        }
                    };
                    let got = acc[i * kern.nr + j] as f64;
                    assert!(
                        (got - exact).abs() <= bound,
                        "{prec} ({i},{j}): {got} vs {exact} (bound {bound})"
                    );
                }
            }
        }
    }

    #[test]
    fn k_zero_is_identity_for_every_impl() {
        for prec in LOWP {
            for isa in lowp_impl_isas(prec) {
                let kern = lowp_impl(prec, isa).unwrap();
                let mut acc = vec![3.0f32; kern.mr * kern.nr];
                kern.run(0, &[], &[], &mut acc, &[], &[], &[]);
                assert!(acc.iter().all(|&v| v == 3.0), "{prec}/{isa} k=0 must be identity");
            }
        }
    }
}
