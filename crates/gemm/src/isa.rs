//! Runtime ISA dispatch for the microkernel family.
//!
//! The paper's fused kernels are written against hardware-wide register
//! tiles (CUTLASS tensor-core fragments, `__half2` SIMD2 pairs); the CPU
//! analogue is picking the widest SIMD tier the host actually has. One
//! kernel is selected for the whole process:
//!
//! | tier     | tile (`mr×nr`) | inner step                                  |
//! |----------|----------------|---------------------------------------------|
//! | `scalar` | 8×8            | autovectorized loops, portable everywhere    |
//! | `avx2`   | 8×16           | `_mm256_fmadd_ps` on 16 `ymm` accumulators   |
//! | `avx512` | 16×16          | `_mm512_fmadd_ps` on 16 `zmm` accumulators   |
//!
//! Selection happens once, lazily, from `is_x86_feature_detected!` — best
//! tier wins — and can be overridden with the `BYTE_GEMM_ISA` environment
//! variable (`scalar|avx2|avx512|auto`) for testing and benchmarking. An
//! unknown value panics with the accepted set; requesting a tier the host
//! lacks falls back to the best available one with a one-time warning on
//! stderr (the env var is a *preference*, scripts must keep working on
//! smaller hosts). Programmatic selection via [`set_active_isa`] is strict
//! and returns an error instead.
//!
//! Safety story: `unsafe` is confined to the two intrinsic kernels, each
//! behind `#[target_feature]` and only ever reachable through a
//! [`MicroKernel`] constructed after its feature was detected. Both rely on
//! one documented invariant: **micropanels are always allocated and packed
//! at full `mr`/`nr` tile width, zero-padded** (guaranteed by
//! [`crate::micro::pack_a_panel`] / [`crate::micro::pack_b_panel`] and the
//! drivers' panel sizing), so unconditional full-width vector loads are
//! in-bounds even on remainder strips.

// Unsafe is confined to the `#[target_feature]` intrinsic kernels below.
#![allow(unsafe_code)]

use crate::micro::{scalar_kernel, MicroKernel, SCALAR_FUSED_FMA, SCALAR_MR, SCALAR_NR};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Once;

/// Instruction-set tiers of the microkernel family, poorest to widest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Isa {
    /// Portable scalar kernel — compiled for the build's target CPU, no
    /// runtime feature requirements. The universal fallback.
    Scalar,
    /// AVX2 + FMA, 256-bit vectors.
    Avx2,
    /// AVX-512F, 512-bit vectors.
    Avx512,
}

impl Isa {
    /// Every tier, poorest to widest.
    pub const ALL: [Isa; 3] = [Isa::Scalar, Isa::Avx2, Isa::Avx512];

    /// The tier's canonical lowercase name (the `BYTE_GEMM_ISA` spelling).
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx2 => "avx2",
            Isa::Avx512 => "avx512",
        }
    }

    fn index(self) -> u8 {
        match self {
            Isa::Scalar => 0,
            Isa::Avx2 => 1,
            Isa::Avx512 => 2,
        }
    }

    fn from_index(idx: u8) -> Isa {
        Isa::ALL[idx as usize]
    }
}

impl std::fmt::Display for Isa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A parsed `BYTE_GEMM_ISA` value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsaRequest {
    /// Pick the widest tier the host supports (the default).
    Auto,
    /// Prefer one specific tier.
    Exact(Isa),
}

/// Parses a `BYTE_GEMM_ISA` value (case-insensitive, surrounding whitespace
/// ignored).
///
/// # Errors
/// Returns a message naming the offending value and the accepted set —
/// this is what [`active_kernel`] panics with on an unknown override.
pub fn parse_isa_request(s: &str) -> Result<IsaRequest, String> {
    match s.trim().to_ascii_lowercase().as_str() {
        "auto" => Ok(IsaRequest::Auto),
        "scalar" => Ok(IsaRequest::Exact(Isa::Scalar)),
        "avx2" => Ok(IsaRequest::Exact(Isa::Avx2)),
        "avx512" => Ok(IsaRequest::Exact(Isa::Avx512)),
        _ => Err(format!(
            "BYTE_GEMM_ISA: unknown value `{s}` (expected one of `scalar`, `avx2`, `avx512`, `auto`)"
        )),
    }
}

/// Whether the running CPU supports a tier's kernel.
fn detected(isa: Isa) -> bool {
    match isa {
        Isa::Scalar => true,
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"),
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => is_x86_feature_detected!("avx512f"),
        #[cfg(not(target_arch = "x86_64"))]
        _ => false,
    }
}

/// The tiers this host can run, poorest to widest. Always contains
/// [`Isa::Scalar`].
pub fn available_isas() -> Vec<Isa> {
    Isa::ALL.into_iter().filter(|&i| detected(i)).collect()
}

/// Resolves a request against an availability set (pure — unit-testable
/// without faking CPUID). Returns the selected tier and, when the request
/// had to be downgraded, a human-readable warning.
pub fn resolve_request(request: IsaRequest, available: &[Isa]) -> (Isa, Option<String>) {
    let best = available.iter().copied().max().unwrap_or(Isa::Scalar);
    match request {
        IsaRequest::Auto => (best, None),
        IsaRequest::Exact(isa) if available.contains(&isa) => (isa, None),
        IsaRequest::Exact(isa) => (
            best,
            Some(format!(
                "BYTE_GEMM_ISA={} requested but this host does not support it; falling back to `{}`",
                isa.name(),
                best.name()
            )),
        ),
    }
}

/// Emits a degraded-dispatch diagnostic through [`bt_obs::warn_once`]: it
/// prints at most once per process and lands in the captured warning log,
/// so tests assert on it instead of scraping stderr.
fn emit_warning(w: &str) {
    bt_obs::warn_once("bt-gemm.isa", &format!("bt-gemm: {w}"));
}

static SCALAR_KERNEL: MicroKernel = MicroKernel::new(
    Isa::Scalar,
    SCALAR_MR,
    SCALAR_NR,
    SCALAR_FUSED_FMA,
    scalar_kernel::<SCALAR_FUSED_FMA>,
);

#[cfg(target_arch = "x86_64")]
static AVX2_KERNEL: MicroKernel = MicroKernel::new(Isa::Avx2, 8, 16, true, avx2_kernel_8x16);

#[cfg(target_arch = "x86_64")]
static AVX512_KERNEL: MicroKernel = MicroKernel::new(Isa::Avx512, 16, 16, true, avx512_kernel_16x16);

/// The kernel implementing a tier, or `None` when this host cannot run it.
pub fn kernel_for(isa: Isa) -> Option<&'static MicroKernel> {
    if !detected(isa) {
        return None;
    }
    match isa {
        Isa::Scalar => Some(&SCALAR_KERNEL),
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => Some(&AVX2_KERNEL),
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => Some(&AVX512_KERNEL),
        #[cfg(not(target_arch = "x86_64"))]
        _ => None,
    }
}

/// Active tier index, or `UNSET` before first use.
static ACTIVE: AtomicU8 = AtomicU8::new(UNSET);
static ENV_INIT: Once = Once::new();
const UNSET: u8 = u8::MAX;

fn init_from_env() {
    ENV_INIT.call_once(|| {
        let request = match std::env::var("BYTE_GEMM_ISA") {
            Ok(s) => parse_isa_request(&s).unwrap_or_else(|e| panic!("{e}")),
            Err(_) => IsaRequest::Auto,
        };
        let (isa, warning) = resolve_request(request, &available_isas());
        if let Some(w) = warning {
            emit_warning(&w);
        }
        // `store` may race a concurrent `set_active_isa`; either value is a
        // valid selection and the `Once` keeps the env consulted only once.
        let _ = ACTIVE.compare_exchange(UNSET, isa.index(), Ordering::Release, Ordering::Relaxed);
    });
}

/// The process-wide active tier (initialized from `BYTE_GEMM_ISA` or auto
/// detection on first use).
pub fn active_isa() -> Isa {
    active_kernel().isa
}

/// The process-wide active microkernel. Every GEMM launch reads this once
/// at entry, so a launch is internally consistent even if the selection is
/// changed concurrently.
///
/// # Panics
/// Panics (once) if `BYTE_GEMM_ISA` is set to an unknown value.
pub fn active_kernel() -> &'static MicroKernel {
    let mut idx = ACTIVE.load(Ordering::Acquire);
    if idx == UNSET {
        init_from_env();
        idx = ACTIVE.load(Ordering::Acquire);
    }
    kernel_for(Isa::from_index(idx)).expect("active tier was verified available at selection time")
}

/// Forces the active tier — the programmatic hook the differential tests
/// and benches use to pin each tier in turn. Unlike the env override this
/// is strict: requesting an unavailable tier is an error, not a fallback.
///
/// # Errors
/// Returns a message naming the unsupported tier.
pub fn set_active_isa(isa: Isa) -> Result<(), String> {
    if !detected(isa) {
        return Err(format!("ISA tier `{}` is not supported on this host", isa.name()));
    }
    // Mark env processing as done so a later `active_kernel` cannot undo an
    // explicit selection (`Once` tolerates redundant calls).
    ENV_INIT.call_once(|| {});
    ACTIVE.store(isa.index(), Ordering::Release);
    Ok(())
}

/// AVX2+FMA 8×16 kernel: 16 `ymm` accumulators (rows × two 8-lane column
/// vectors), one broadcast `A` element per row per step.
///
/// # Safety
/// Caller must guarantee the [`crate::micro::KernelFn`] extents (panels at
/// full 8/16 tile width — the packers' zero-padding invariant) and that the
/// CPU supports AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn avx2_kernel_8x16(kc: usize, a: *const f32, b: *const f32, acc: *mut f32) {
    use std::arch::x86_64::*;
    // SAFETY: extents guaranteed by the caller contract above.
    unsafe {
        let mut c = [[_mm256_setzero_ps(); 2]; 8];
        for (i, row) in c.iter_mut().enumerate() {
            row[0] = _mm256_loadu_ps(acc.add(i * 16));
            row[1] = _mm256_loadu_ps(acc.add(i * 16 + 8));
        }
        for p in 0..kc {
            let b0 = _mm256_loadu_ps(b.add(p * 16));
            let b1 = _mm256_loadu_ps(b.add(p * 16 + 8));
            for (i, row) in c.iter_mut().enumerate() {
                let ai = _mm256_set1_ps(*a.add(p * 8 + i));
                row[0] = _mm256_fmadd_ps(ai, b0, row[0]);
                row[1] = _mm256_fmadd_ps(ai, b1, row[1]);
            }
        }
        for (i, row) in c.iter().enumerate() {
            _mm256_storeu_ps(acc.add(i * 16), row[0]);
            _mm256_storeu_ps(acc.add(i * 16 + 8), row[1]);
        }
    }
}

/// AVX-512F 16×16 kernel: 16 `zmm` accumulators (one full-width row each),
/// a single 16-lane `B` load per step shared by all 16 rows — the highest
/// loaded-element reuse in the family (16 FMAs per element loaded).
///
/// # Safety
/// Caller must guarantee the [`crate::micro::KernelFn`] extents (panels at
/// full 16/16 tile width — the packers' zero-padding invariant) and that
/// the CPU supports AVX-512F.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn avx512_kernel_16x16(kc: usize, a: *const f32, b: *const f32, acc: *mut f32) {
    use std::arch::x86_64::*;
    // SAFETY: extents guaranteed by the caller contract above.
    unsafe {
        let mut c = [_mm512_setzero_ps(); 16];
        for (i, row) in c.iter_mut().enumerate() {
            *row = _mm512_loadu_ps(acc.add(i * 16));
        }
        for p in 0..kc {
            let bv = _mm512_loadu_ps(b.add(p * 16));
            for (i, row) in c.iter_mut().enumerate() {
                let ai = _mm512_set1_ps(*a.add(p * 16 + i));
                *row = _mm512_fmadd_ps(ai, bv, *row);
            }
        }
        for (i, row) in c.iter().enumerate() {
            _mm512_storeu_ps(acc.add(i * 16), *row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_always_available() {
        assert!(available_isas().contains(&Isa::Scalar));
        assert!(kernel_for(Isa::Scalar).is_some());
    }

    #[test]
    fn available_tiers_have_kernels_with_matching_isa() {
        for tier in available_isas() {
            let k = kernel_for(tier).expect("available tier must have a kernel");
            assert_eq!(k.isa, tier);
        }
    }

    #[test]
    fn active_kernel_is_available() {
        let k = active_kernel();
        assert!(available_isas().contains(&k.isa));
    }

    #[test]
    fn unavailable_tier_warning_is_captured_once() {
        // Emit the same degraded-dispatch warning twice; the captured log
        // must hold exactly one entry for the key (warn_once dedupes).
        let (_, warning) = resolve_request(IsaRequest::Exact(Isa::Avx512), &[Isa::Scalar]);
        let w = warning.expect("unavailable tier must warn");
        assert!(w.contains("avx512") && w.contains("scalar"));
        emit_warning(&w);
        emit_warning(&w);
        let captured: Vec<_> = bt_obs::warnings()
            .into_iter()
            .filter(|(k, _)| k == "bt-gemm.isa")
            .collect();
        assert_eq!(captured.len(), 1, "warn_once must dedupe by key");
        assert!(captured[0].1.contains("bt-gemm:"));
    }
}
