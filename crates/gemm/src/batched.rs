//! Strided batched GEMM — the cuBLAS `gemmStridedBatched` substitute.
//!
//! Batched GEMM requires every sub-problem to share one shape, which is
//! exactly why the paper's zero-padding algorithm cannot help the attention
//! GEMMs on this path (§III.D: "Since batched GEMM in MHA requires identical
//! problem shapes among different batches, we unpack the tensor before
//! entering the attention module"). The grouped GEMM in [`crate::grouped`]
//! is the paper's answer to that restriction.

use crate::blocked::{sgemm, GemmSpec};
use rayon::prelude::*;

/// Arguments for a strided batched GEMM over `batch` sub-problems of
/// identical shape `m×n×k`: problem `i` reads `a[i*stride_a..]`,
/// `b[i*stride_b..]` and writes `c[i*stride_c..]`.
#[derive(Debug, Clone, Copy)]
pub struct BatchedArgs {
    /// Number of sub-problems.
    pub batch: usize,
    /// Rows of each output.
    pub m: usize,
    /// Columns of each output.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
    /// Element stride between consecutive `A` operands.
    pub stride_a: usize,
    /// Element stride between consecutive `B` operands.
    pub stride_b: usize,
    /// Element stride between consecutive `C` operands.
    pub stride_c: usize,
}

impl BatchedArgs {
    /// Dense packing: strides equal to each operand's size.
    pub fn dense(batch: usize, m: usize, n: usize, k: usize) -> Self {
        Self {
            batch,
            m,
            n,
            k,
            stride_a: m * k,
            stride_b: k * n,
            stride_c: m * n,
        }
    }
}

/// Strided batched GEMM: `C_i = alpha * op(A_i)·op(B_i) + beta * C_i` for
/// every sub-problem, parallel over the batch.
///
/// # Panics
/// Panics if any operand slice is too short for the declared batch layout.
pub fn batched_sgemm(spec: GemmSpec, args: BatchedArgs, a: &[f32], b: &[f32], c: &mut [f32]) {
    let BatchedArgs {
        batch,
        m,
        n,
        k,
        stride_a,
        stride_b,
        stride_c,
    } = args;
    if batch == 0 {
        return;
    }
    assert!(stride_c >= m * n, "stride_c {stride_c} < m*n {}", m * n);
    assert!(
        a.len() >= (batch - 1) * stride_a + m * k,
        "A too short for batch layout"
    );
    assert!(
        b.len() >= (batch - 1) * stride_b + k * n,
        "B too short for batch layout"
    );
    assert!(
        c.len() >= (batch - 1) * stride_c + m * n,
        "C too short for batch layout"
    );

    // Parallelize over the batch; each sub-GEMM runs single-panel (they are
    // small in MHA) but `sgemm` may further split large panels — rayon's
    // work stealing balances either way.
    c[..(batch - 1) * stride_c + m * n]
        .par_chunks_mut(stride_c)
        .enumerate()
        .for_each(|(i, c_i)| {
            let a_i = &a[i * stride_a..i * stride_a + m * k];
            let b_i = &b[i * stride_b..i * stride_b + k * n];
            sgemm_serial(spec, m, n, k, a_i, b_i, &mut c_i[..m * n]);
        });
}

/// Single-threaded GEMM used inside the batch loop (the batch dimension is
/// already the parallel axis). Falls back to the parallel path for a batch
/// of one, where panel parallelism is the only parallelism available.
fn sgemm_serial(spec: GemmSpec, m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    // `sgemm` uses rayon internally; nested parallelism under an outer
    // par_chunks_mut is handled by rayon's work stealing without
    // oversubscription, so delegating is both simplest and fastest.
    sgemm(spec, m, n, k, a, b, c);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::gemm_ref;
    use bt_tensor::compare::assert_close;
    use bt_tensor::rng::Xoshiro256StarStar;

    fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect()
    }

    #[test]
    fn matches_per_problem_reference() {
        let args = BatchedArgs::dense(5, 13, 17, 19);
        let a = rand_vec(args.batch * args.stride_a, 1);
        let b = rand_vec(args.batch * args.stride_b, 2);
        let mut c = vec![0.0f32; args.batch * args.stride_c];
        batched_sgemm(GemmSpec::nn(), args, &a, &b, &mut c);
        for i in 0..args.batch {
            let mut expect = vec![0.0f32; args.m * args.n];
            gemm_ref(
                false,
                false,
                args.m,
                args.n,
                args.k,
                1.0,
                &a[i * args.stride_a..],
                &b[i * args.stride_b..],
                0.0,
                &mut expect,
            );
            assert_close(
                &c[i * args.stride_c..i * args.stride_c + args.m * args.n],
                &expect,
                1e-3,
            );
        }
    }

    #[test]
    fn transb_batched() {
        let args = BatchedArgs::dense(3, 8, 8, 16);
        let a = rand_vec(args.batch * args.stride_a, 3);
        let b = rand_vec(args.batch * args.stride_b, 4);
        let mut c = vec![0.0f32; args.batch * args.stride_c];
        batched_sgemm(GemmSpec::nt().alpha(0.125), args, &a, &b, &mut c);
        for i in 0..args.batch {
            let mut expect = vec![0.0f32; args.m * args.n];
            gemm_ref(
                false,
                true,
                args.m,
                args.n,
                args.k,
                0.125,
                &a[i * args.stride_a..],
                &b[i * args.stride_b..],
                0.0,
                &mut expect,
            );
            assert_close(
                &c[i * args.stride_c..i * args.stride_c + args.m * args.n],
                &expect,
                1e-3,
            );
        }
    }

    #[test]
    fn zero_batch_is_noop() {
        let mut c: Vec<f32> = vec![];
        batched_sgemm(GemmSpec::nn(), BatchedArgs::dense(0, 4, 4, 4), &[], &[], &mut c);
    }

    #[test]
    fn padded_strides_leave_gaps_untouched() {
        // stride_c larger than m*n: the gap must keep its sentinel values.
        let mut args = BatchedArgs::dense(2, 2, 2, 2);
        args.stride_c = 6;
        let a = rand_vec(2 * args.stride_a, 5);
        let b = rand_vec(2 * args.stride_b, 6);
        let mut c = vec![99.0f32; 2 * args.stride_c];
        batched_sgemm(GemmSpec::nn(), args, &a, &b, &mut c);
        assert_eq!(c[4], 99.0);
        assert_eq!(c[5], 99.0);
    }

    #[test]
    #[should_panic(expected = "C too short")]
    fn short_c_panics() {
        let args = BatchedArgs::dense(2, 2, 2, 2);
        let a = vec![0.0; 8];
        let b = vec![0.0; 8];
        let mut c = vec![0.0; 7];
        batched_sgemm(GemmSpec::nn(), args, &a, &b, &mut c);
    }
}
