//! # bt-gemm — GEMM substrate (the cuBLAS/CUTLASS substitute)
//!
//! The paper leans on three vendor GEMM capabilities:
//!
//! 1. **Plain / batched GEMM** (cuBLAS) for the four projection/FFN GEMMs and
//!    the baseline attention path ([`sgemm`], [`batched`]).
//! 2. **Fused epilogues** (CUTLASS): element-wise transforms applied while
//!    the result tile is still in registers — add-bias + GELU (§III.C.2) and
//!    the softmax partial reduction of fused MHA (§III.E.2, Fig. 8).
//!    [`sgemm_epilogue`] and the grouped-GEMM epilogue hooks reproduce these
//!    fusion points: the transform runs on the output tile *before* it is
//!    stored, so the unfused variant's extra global-memory round trip never
//!    happens.
//! 3. **Grouped GEMM** (CUTLASS 2.10, which ByteTransformer itself extended):
//!    many sub-GEMMs of *arbitrary* shapes walked tile-by-tile by a built-in
//!    scheduler. [`grouped`] implements the round-robin problem visitor, the
//!    paper's **warp-prefetch scheduler optimization** (Fig. 7: one scheduler
//!    interaction fetches 32 tile assignments), and the **mainloop fusion**
//!    hook of Algorithm III.2 (an element-wise transform applied to A
//!    fragments as they are loaded, used to fold softmax normalization into
//!    the second attention GEMM).
//!
//! All operands are row-major `f32` slices. Matrix `B` may be consumed
//! transposed (`transb`), which is how `Q·Kᵀ` is expressed. Parallelism maps
//! CUDA threadblocks onto rayon tasks: plain GEMM parallelizes over row
//! panels of `C`; grouped GEMM spawns a fixed number of virtual CTAs that
//! pull tiles from the scheduler exactly as Fig. 5 describes.

// `deny` rather than `forbid`: the lock-free output store (`store`) confines
// its raw-pointer writes behind a module-level `allow` with debug-checked
// disjointness, and the ISA-dispatched microkernels (`isa`, `micro`) confine
// theirs behind `#[target_feature]` entry points with a documented
// zero-padded-panel invariant; everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod batched;
mod blocked;
pub mod grouped;
pub mod isa;
pub mod lowp;
pub mod micro;
pub mod prec;
mod reference;
mod scratch;
pub mod store;

pub use blocked::{sgemm, sgemm_epilogue, GemmSpec};
pub use isa::{active_isa, available_isas, set_active_isa, Isa};
pub use lowp::{dot_error_bound, int8_dot_error_bound, lowp_impl, resolve_lowp_kernel, Chain, LowpKernel};
pub use prec::{active_precision, parse_prec_request, set_active_precision, Precision};
pub use reference::gemm_ref;
pub use store::DisjointWriter;

use bt_device::KernelSpec;

/// Builds the standard [`KernelSpec`] cost for an `m×n×k` GEMM with
/// `elem_bytes`-wide storage: `2mnk` FLOPs, `(mk + kn)` elements read,
/// `mn` elements written.
pub fn gemm_kernel_spec(name: impl Into<String>, m: usize, n: usize, k: usize, elem_bytes: usize) -> KernelSpec {
    KernelSpec::new(name)
        .flops(2 * (m as u64) * (n as u64) * (k as u64))
        .reads(((m * k + k * n) * elem_bytes) as u64)
        .writes((m * n * elem_bytes) as u64)
}

/// Like [`gemm_kernel_spec`] but priced at the *active precision*'s packed
/// element width — the cost-model view of the `BYTE_GEMM_PREC` axis (panel
/// bytes are what actually stream through the cache hierarchy).
pub fn gemm_kernel_spec_active(name: impl Into<String>, m: usize, n: usize, k: usize) -> KernelSpec {
    gemm_kernel_spec(name, m, n, k, active_precision().elem_bytes())
}
