//! Naive triple-loop GEMM used as the oracle in tests and property checks.

/// Reference GEMM: `C = alpha * op(A) · op(B) + beta * C`.
///
/// * `a` is `m×k` row-major (or `k×m` if `transa`),
/// * `b` is `k×n` row-major (or `n×k` if `transb`),
/// * `c` is `m×n` row-major.
///
/// Unoptimized by design — this is the correctness oracle for every tuned
/// GEMM path in the crate.
///
/// # Panics
/// Panics if any slice is too short for its declared shape.
#[allow(clippy::too_many_arguments)]
pub fn gemm_ref(
    transa: bool,
    transb: bool,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    assert!(a.len() >= m * k, "A too short: {} < {}", a.len(), m * k);
    assert!(b.len() >= k * n, "B too short: {} < {}", b.len(), k * n);
    assert!(c.len() >= m * n, "C too short: {} < {}", c.len(), m * n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                let av = if transa { a[p * m + i] } else { a[i * k + p] };
                let bv = if transb { b[j * k + p] } else { b[p * n + j] };
                acc += av * bv;
            }
            c[i * n + j] = alpha * acc + beta * c[i * n + j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_times_matrix() {
        let a = [1.0, 0.0, 0.0, 1.0]; // I2
        let b = [1.0, 2.0, 3.0, 4.0];
        let mut c = [0.0; 4];
        gemm_ref(false, false, 2, 2, 2, 1.0, &a, &b, 0.0, &mut c);
        assert_eq!(c, b);
    }

    #[test]
    fn known_product() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [0.0; 4];
        gemm_ref(false, false, 2, 2, 2, 1.0, &a, &b, 0.0, &mut c);
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn transb_matches_manual_transpose() {
        // B stored as n×k, consumed as k×n.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 2x3
        let b_t = [1.0, 0.0, 2.0, 0.0, 1.0, 1.0]; // 2x3 (n=2, k=3)
        let mut c1 = [0.0; 4];
        gemm_ref(false, true, 2, 2, 3, 1.0, &a, &b_t, 0.0, &mut c1);
        // Manual transpose to k×n.
        let b = [1.0, 0.0, 0.0, 1.0, 2.0, 1.0]; // 3x2
        let mut c2 = [0.0; 4];
        gemm_ref(false, false, 2, 2, 3, 1.0, &a, &b, 0.0, &mut c2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn transa_matches_manual_transpose() {
        let a_t = [1.0, 4.0, 2.0, 5.0, 3.0, 6.0]; // 3x2 stored, consumed 2x3
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 2x3
        let b = [1.0, 1.0, 0.0, 2.0, 1.0, 0.0]; // 3x2
        let mut c1 = [0.0; 4];
        let mut c2 = [0.0; 4];
        gemm_ref(true, false, 2, 2, 3, 1.0, &a_t, &b, 0.0, &mut c1);
        gemm_ref(false, false, 2, 2, 3, 1.0, &a, &b, 0.0, &mut c2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn alpha_beta_blend() {
        let a = [2.0];
        let b = [3.0];
        let mut c = [10.0];
        gemm_ref(false, false, 1, 1, 1, 2.0, &a, &b, 0.5, &mut c);
        assert_eq!(c, [2.0 * 6.0 + 0.5 * 10.0]);
    }
}
