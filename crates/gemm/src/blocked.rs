//! Blocked, packed, rayon-parallel SGEMM with a fused-epilogue entry point.
//!
//! The layout mirrors a classic GotoBLAS/cuBLAS decomposition adapted to CPU
//! threads standing in for threadblocks:
//!
//! * operands are canonicalized to row-major `A (m×k)` / `B (k×n)` panels
//!   (a transposed operand is packed once, like a GPU kernel's staging pass);
//! * `C` is split into row panels, one rayon task per panel (the
//!   "threadblock" grid);
//! * each panel accumulates in a thread-local buffer over `KC`-wide K blocks
//!   (the "registers + shared memory" level), and the optional epilogue is
//!   applied while the accumulator is still hot — which is precisely the
//!   fusion point the paper uses to hide add-bias + GELU inside the GEMM
//!   (§III.C.2).

use rayon::prelude::*;
use std::borrow::Cow;

/// K-dimension block size (elements) for the accumulation loop.
const KC: usize = 256;
/// Rows of `C` per parallel task.
const MR: usize = 32;

/// GEMM configuration: operand transposes and scaling factors for
/// `C = alpha * op(A)·op(B) + beta * C`.
#[derive(Debug, Clone, Copy)]
pub struct GemmSpec {
    /// Consume `A` transposed (`A` stored `k×m`).
    pub transa: bool,
    /// Consume `B` transposed (`B` stored `n×k`).
    pub transb: bool,
    /// Scale on the product.
    pub alpha: f32,
    /// Scale on the existing `C` contents.
    pub beta: f32,
}

impl GemmSpec {
    /// No transposes, `alpha = 1`, `beta = 0`.
    pub fn nn() -> Self {
        Self {
            transa: false,
            transb: false,
            alpha: 1.0,
            beta: 0.0,
        }
    }

    /// `B` transposed (the `Q·Kᵀ` shape), `alpha = 1`, `beta = 0`.
    pub fn nt() -> Self {
        Self {
            transb: true,
            ..Self::nn()
        }
    }

    /// Sets `alpha`.
    pub fn alpha(mut self, alpha: f32) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets `beta`.
    pub fn beta(mut self, beta: f32) -> Self {
        self.beta = beta;
        self
    }
}

/// Packs `src` (stored `cols×rows`, i.e. the transpose of the wanted matrix)
/// into a `rows×cols` row-major buffer.
fn pack_transposed(src: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; rows * cols];
    // src[(c, r)] = src[c * rows + r]  ->  out[r * cols + c]
    for c in 0..cols {
        let col = &src[c * rows..(c + 1) * rows];
        for (r, &v) in col.iter().enumerate() {
            out[r * cols + c] = v;
        }
    }
    out
}

/// `C = alpha * op(A)·op(B) + beta * C`, row-major, parallel.
///
/// # Panics
/// Panics if a slice is shorter than its declared shape.
pub fn sgemm(spec: GemmSpec, m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    sgemm_inner(spec, m, n, k, a, b, c, None)
}

/// [`sgemm`] with a fused epilogue: each output element `x` at column `j`
/// is stored as `epilogue(j, x)` while still in the accumulator — the
/// register-level reuse of the paper's CUTLASS epilogue fusion.
#[allow(clippy::too_many_arguments)]
pub fn sgemm_epilogue(
    spec: GemmSpec,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    epilogue: &(dyn Fn(usize, f32) -> f32 + Sync),
) {
    sgemm_inner(spec, m, n, k, a, b, c, Some(epilogue))
}

#[allow(clippy::too_many_arguments)]
fn sgemm_inner(
    spec: GemmSpec,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    epilogue: Option<&(dyn Fn(usize, f32) -> f32 + Sync)>,
) {
    assert!(a.len() >= m * k, "A too short: {} < {}", a.len(), m * k);
    assert!(b.len() >= k * n, "B too short: {} < {}", b.len(), k * n);
    assert!(c.len() >= m * n, "C too short: {} < {}", c.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }

    // Canonicalize to A: m×k, B: k×n row-major (pack transposed operands).
    let a_pack: Cow<'_, [f32]> = if spec.transa {
        Cow::Owned(pack_transposed(&a[..m * k], m, k))
    } else {
        Cow::Borrowed(&a[..m * k])
    };
    let b_pack: Cow<'_, [f32]> = if spec.transb {
        Cow::Owned(pack_transposed(&b[..k * n], k, n))
    } else {
        Cow::Borrowed(&b[..k * n])
    };
    let a_pack = &*a_pack;
    let b_pack = &*b_pack;
    let (alpha, beta) = (spec.alpha, spec.beta);

    c[..m * n]
        .par_chunks_mut(MR * n)
        .enumerate()
        .for_each(|(chunk_idx, c_panel)| {
            let row0 = chunk_idx * MR;
            let rows = c_panel.len() / n;
            // Thread-local accumulator panel (the "register tile").
            let mut acc = vec![0.0f32; rows * n];
            let mut kb = 0;
            while kb < k {
                let kc = KC.min(k - kb);
                for i in 0..rows {
                    let a_row = &a_pack[(row0 + i) * k + kb..(row0 + i) * k + kb + kc];
                    let acc_row = &mut acc[i * n..(i + 1) * n];
                    // No zero-skipping: padded tokens must cost what they
                    // cost, or the padded-vs-packed comparison would lie.
                    for (p, &aik) in a_row.iter().enumerate() {
                        let b_row = &b_pack[(kb + p) * n..(kb + p) * n + n];
                        for (cv, &bv) in acc_row.iter_mut().zip(b_row) {
                            *cv += aik * bv;
                        }
                    }
                }
                kb += kc;
            }
            // Store with alpha/beta blend and the optional fused epilogue.
            for i in 0..rows {
                let acc_row = &acc[i * n..(i + 1) * n];
                let c_row = &mut c_panel[i * n..(i + 1) * n];
                match epilogue {
                    None => {
                        if beta == 0.0 {
                            for (cv, &av) in c_row.iter_mut().zip(acc_row) {
                                *cv = alpha * av;
                            }
                        } else {
                            for (cv, &av) in c_row.iter_mut().zip(acc_row) {
                                *cv = alpha * av + beta * *cv;
                            }
                        }
                    }
                    Some(epi) => {
                        for (j, (cv, &av)) in c_row.iter_mut().zip(acc_row).enumerate() {
                            let x = alpha * av + beta * *cv;
                            *cv = epi(j, x);
                        }
                    }
                }
            }
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::gemm_ref;
    use bt_tensor::compare::assert_close;
    use bt_tensor::rng::Xoshiro256StarStar;

    fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect()
    }

    fn check_against_ref(spec: GemmSpec, m: usize, n: usize, k: usize) {
        let a = rand_vec(m * k, 1);
        let b = rand_vec(k * n, 2);
        let mut c1 = rand_vec(m * n, 3);
        let mut c2 = c1.clone();
        sgemm(spec, m, n, k, &a, &b, &mut c1);
        gemm_ref(spec.transa, spec.transb, m, n, k, spec.alpha, &a, &b, spec.beta, &mut c2);
        assert_close(&c1, &c2, 1e-4 * k as f32);
    }

    #[test]
    fn matches_reference_various_shapes() {
        for &(m, n, k) in &[
            (1, 1, 1),
            (3, 5, 7),
            (32, 32, 32),
            (33, 65, 127),
            (64, 256, 64),
            (100, 30, 300),
        ] {
            check_against_ref(GemmSpec::nn(), m, n, k);
        }
    }

    #[test]
    fn matches_reference_transposed() {
        check_against_ref(GemmSpec::nt(), 33, 47, 65);
        check_against_ref(
            GemmSpec {
                transa: true,
                transb: false,
                alpha: 1.0,
                beta: 0.0,
            },
            17,
            29,
            31,
        );
        check_against_ref(
            GemmSpec {
                transa: true,
                transb: true,
                alpha: 0.5,
                beta: 0.25,
            },
            19,
            23,
            40,
        );
    }

    #[test]
    fn alpha_beta_respected() {
        check_against_ref(GemmSpec::nn().alpha(2.5).beta(-0.5), 40, 40, 40);
    }

    #[test]
    fn k_zero_scales_c_by_beta() {
        let mut c = vec![2.0f32; 4];
        sgemm(GemmSpec::nn().beta(0.5), 2, 2, 0, &[], &[], &mut c);
        assert_eq!(c, vec![1.0; 4]);
    }

    #[test]
    fn empty_output_is_noop() {
        let mut c: Vec<f32> = vec![];
        sgemm(GemmSpec::nn(), 0, 5, 3, &[0.0; 0], &[0.0; 15], &mut c);
        sgemm(GemmSpec::nn(), 5, 0, 3, &[0.0; 15], &[], &mut c);
    }

    #[test]
    fn epilogue_applied_per_column() {
        let m = 7;
        let n = 9;
        let k = 11;
        let a = rand_vec(m * k, 4);
        let b = rand_vec(k * n, 5);
        let bias: Vec<f32> = (0..n).map(|j| j as f32).collect();
        let mut c1 = vec![0.0f32; m * n];
        let mut c2 = vec![0.0f32; m * n];
        sgemm_epilogue(GemmSpec::nn(), m, n, k, &a, &b, &mut c1, &|j, x| {
            (x + bias[j]).max(0.0)
        });
        gemm_ref(false, false, m, n, k, 1.0, &a, &b, 0.0, &mut c2);
        for i in 0..m {
            for j in 0..n {
                let expect = (c2[i * n + j] + j as f32).max(0.0);
                assert!((c1[i * n + j] - expect).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn large_parallel_shape_matches() {
        // Exercises multiple row panels and K blocks.
        check_against_ref(GemmSpec::nn(), 200, 70, 600);
    }
}
