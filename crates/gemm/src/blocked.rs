//! Blocked, packed, rayon-parallel SGEMM with a fused-epilogue entry point,
//! built on the shared register-blocked microkernel in [`crate::micro`].
//!
//! The layout mirrors a classic GotoBLAS/cuBLAS decomposition adapted to CPU
//! threads standing in for threadblocks:
//!
//! * `B` is packed once into `NR`-wide k-major micropanels (the staged
//!   "shared memory" image, shared read-only by every task), consuming the
//!   `transb` layout directly — no separate transpose pass;
//! * `C` is split into row panels, one rayon task per panel (the
//!   "threadblock" grid); each task packs its own `A` rows into `MR`-wide
//!   micropanels, again straight from the `transa` layout;
//! * each `MR×NR` output block accumulates in microkernel locals across the
//!   *entire* `K` extent (the "register tile"), and the optional epilogue is
//!   applied while the accumulator is still hot — which is precisely the
//!   fusion point the paper uses to hide add-bias + GELU inside the GEMM
//!   (§III.C.2).

use crate::isa::active_kernel;
use crate::micro::{pack_a_panel, pack_b_panel, MR_MAX, NR_MAX};
use crate::scratch::with_worker_scratch;
use rayon::prelude::*;

/// Rows of `C` per parallel task (a multiple of every kernel's `MR`).
const PANEL_ROWS: usize = 32;

/// GEMM configuration: operand transposes and scaling factors for
/// `C = alpha * op(A)·op(B) + beta * C`.
#[derive(Debug, Clone, Copy)]
pub struct GemmSpec {
    /// Consume `A` transposed (`A` stored `k×m`).
    pub transa: bool,
    /// Consume `B` transposed (`B` stored `n×k`).
    pub transb: bool,
    /// Scale on the product.
    pub alpha: f32,
    /// Scale on the existing `C` contents.
    pub beta: f32,
}

impl GemmSpec {
    /// No transposes, `alpha = 1`, `beta = 0`.
    pub fn nn() -> Self {
        Self {
            transa: false,
            transb: false,
            alpha: 1.0,
            beta: 0.0,
        }
    }

    /// `B` transposed (the `Q·Kᵀ` shape), `alpha = 1`, `beta = 0`.
    pub fn nt() -> Self {
        Self {
            transb: true,
            ..Self::nn()
        }
    }

    /// Sets `alpha`.
    pub fn alpha(mut self, alpha: f32) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets `beta`.
    pub fn beta(mut self, beta: f32) -> Self {
        self.beta = beta;
        self
    }
}

/// `C = alpha * op(A)·op(B) + beta * C`, row-major, parallel.
///
/// # Panics
/// Panics if a slice is shorter than its declared shape.
pub fn sgemm(spec: GemmSpec, m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    sgemm_inner(spec, m, n, k, a, b, c, None)
}

/// [`sgemm`] with a fused epilogue: each output element `x` at column `j`
/// is stored as `epilogue(j, x)` while still in the accumulator — the
/// register-level reuse of the paper's CUTLASS epilogue fusion.
#[allow(clippy::too_many_arguments)]
pub fn sgemm_epilogue(
    spec: GemmSpec,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    epilogue: &(dyn Fn(usize, f32) -> f32 + Sync),
) {
    sgemm_inner(spec, m, n, k, a, b, c, Some(epilogue))
}

/// Blends one microkernel accumulator row into a `C` row with the
/// alpha/beta scaling and optional epilogue (`col0` is the row's first
/// global column, passed to the epilogue hook).
#[inline]
fn store_row(
    c_row: &mut [f32],
    acc_row: &[f32],
    col0: usize,
    alpha: f32,
    beta: f32,
    epilogue: Option<&(dyn Fn(usize, f32) -> f32 + Sync)>,
) {
    match epilogue {
        None if beta == 0.0 => {
            for (cv, &av) in c_row.iter_mut().zip(acc_row) {
                *cv = alpha * av;
            }
        }
        None => {
            for (cv, &av) in c_row.iter_mut().zip(acc_row) {
                *cv = alpha * av + beta * *cv;
            }
        }
        Some(epi) => {
            for (j, (cv, &av)) in c_row.iter_mut().zip(acc_row).enumerate() {
                let x = alpha * av + beta * *cv;
                *cv = epi(col0 + j, x);
            }
        }
    }
}

/// Records the per-dispatch-path rate inputs `gemm.calls.<isa>.<prec>` and
/// `gemm.flops.<isa>.<prec>` (2·m·n·k flops per launch); the windowed
/// snapshot divides the flops delta by the window to report GFLOP/s per
/// dispatch path.
fn record_dispatch(isa: &str, prec: &str, m: usize, n: usize, k: usize) {
    if bt_obs::enabled() {
        bt_obs::counter(&format!("{}{isa}.{prec}", bt_obs::names::GEMM_CALLS_PREFIX)).incr();
        bt_obs::counter(&format!("{}{isa}.{prec}", bt_obs::names::GEMM_FLOPS_PREFIX)).add(2 * (m * n * k) as u64);
    }
}

#[allow(clippy::too_many_arguments)]
fn sgemm_inner(
    spec: GemmSpec,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    epilogue: Option<&(dyn Fn(usize, f32) -> f32 + Sync)>,
) {
    assert!(a.len() >= m * k, "A too short: {} < {}", a.len(), m * k);
    assert!(b.len() >= k * n, "B too short: {} < {}", b.len(), k * n);
    assert!(c.len() >= m * n, "C too short: {} < {}", c.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    let (alpha, beta) = (spec.alpha, spec.beta);
    if k == 0 {
        // Degenerate product: C = beta*C through the same store path
        // (kernel-independent — no dispatch needed).
        let zero = [0.0f32; NR_MAX];
        for i in 0..m {
            let row = &mut c[i * n..(i + 1) * n];
            for j0 in (0..n).step_by(NR_MAX) {
                let cols = NR_MAX.min(n - j0);
                store_row(&mut row[j0..j0 + cols], &zero[..cols], j0, alpha, beta, epilogue);
            }
        }
        return;
    }

    // The precision axis: a non-f32 active precision resolves to a
    // low-precision kernel (possibly ISA-degraded, with a warn_once) and
    // routes the launch through the packed-bytes driver. `None` means f32 —
    // the original family below.
    let prec = crate::prec::active_precision();
    if let Some(lk) = crate::lowp::resolve_lowp_kernel(prec, crate::isa::active_isa()) {
        record_dispatch(lk.isa.name(), lk.prec.name(), m, n, k);
        return sgemm_lowp(lk, spec, m, n, k, a, b, c, epilogue);
    }

    // One kernel per launch: the geometry below must stay consistent even
    // if the process-wide selection changes mid-flight.
    let kern = active_kernel();
    record_dispatch(kern.isa.name(), "f32", m, n, k);
    if bt_obs::enabled() {
        bt_obs::counter(&format!("gemm.blocked.launches.{}", kern.isa.name())).incr();
    }
    let (mr, nr) = (kern.mr, kern.nr);
    debug_assert_eq!(PANEL_ROWS % mr, 0, "row panels must hold whole micropanels");

    // Pack B once into k-major micropanels, straight from the transb layout.
    let n_panels = n.div_ceil(nr);
    let mut b_pack = vec![0.0f32; n_panels * k * nr];
    b_pack.par_chunks_mut(k * nr).enumerate().for_each(|(jb, dst)| {
        let col0 = jb * nr;
        pack_b_panel(dst, b, spec.transb, col0, nr.min(n - col0), n, k, nr);
    });
    let b_pack = &b_pack;

    c[..m * n]
        .par_chunks_mut(PANEL_ROWS * n)
        .enumerate()
        .for_each(|(chunk_idx, c_panel)| {
            let row0 = chunk_idx * PANEL_ROWS;
            let rows = c_panel.len() / n;
            let m_panels = rows.div_ceil(mr);
            // Packed A rows (the task's full K extent, reused across every
            // column panel) live in the worker's persistent arena — no heap
            // allocation once the worker has seen this panel size.
            // `pack_a_panel` overwrites every lane including the zero pads,
            // so stale contents are harmless.
            with_worker_scratch(|scratch| {
                let a_pack = scratch.a_panels(m_panels * k * mr);
                for ib in 0..m_panels {
                    pack_a_panel(
                        &mut a_pack[ib * k * mr..(ib + 1) * k * mr],
                        a,
                        spec.transa,
                        row0 + ib * mr,
                        mr.min(rows - ib * mr),
                        m,
                        k,
                        mr,
                    );
                }
                for jb in 0..n_panels {
                    let col0 = jb * nr;
                    let cols = nr.min(n - col0);
                    let b_panel = &b_pack[jb * k * nr..(jb + 1) * k * nr];
                    for ib in 0..m_panels {
                        let r = mr.min(rows - ib * mr);
                        let mut acc = [0.0f32; MR_MAX * NR_MAX];
                        kern.run(k, &a_pack[ib * k * mr..(ib + 1) * k * mr], b_panel, &mut acc);
                        for i in 0..r {
                            let row = ib * mr + i;
                            store_row(
                                &mut c_panel[row * n + col0..row * n + col0 + cols],
                                &acc[i * nr..i * nr + cols],
                                col0,
                                alpha,
                                beta,
                                epilogue,
                            );
                        }
                    }
                }
            });
        });
}

/// The low-precision twin of the f32 driver below: same decomposition
/// (B packed once per launch, one rayon task per `C` row panel, register
/// tile accumulation over the full `K` extent, same alpha/beta/epilogue
/// store path) — but micropanels are packed *bytes* in the kernel's own
/// layout, with per-row/per-column scales riding alongside.
///
/// `B` is packed serially: conversion/quantization is vectorized inside the
/// packers, and per-panel scale slices would need a zip the rayon shim does
/// not offer.
#[allow(clippy::too_many_arguments)]
fn sgemm_lowp(
    kern: &'static crate::lowp::LowpKernel,
    spec: GemmSpec,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    epilogue: Option<&(dyn Fn(usize, f32) -> f32 + Sync)>,
) {
    use crate::lowp::{count_pack_bytes, pack_a_panel_lowp, pack_b_panel_lowp};

    let (alpha, beta) = (spec.alpha, spec.beta);
    if bt_obs::enabled() {
        bt_obs::counter(&format!(
            "gemm.blocked.launches.{}.{}",
            kern.isa.name(),
            kern.prec.name()
        ))
        .incr();
    }
    let (mr, nr) = (kern.mr, kern.nr);
    debug_assert_eq!(PANEL_ROWS % mr, 0, "row panels must hold whole micropanels");

    // Pack + quantize B once into k-major byte micropanels.
    let n_panels = n.div_ceil(nr);
    let bpb = kern.b_panel_bytes(k);
    let mut b_pack = vec![0u8; n_panels * bpb];
    let mut sb = vec![0.0f32; n_panels * nr];
    let mut colsum = vec![0i32; n_panels * nr];
    {
        let mut cvt = vec![0u16; k.max(nr)];
        for jb in 0..n_panels {
            let col0 = jb * nr;
            pack_b_panel_lowp(
                kern,
                &mut b_pack[jb * bpb..(jb + 1) * bpb],
                &mut sb[jb * nr..(jb + 1) * nr],
                &mut colsum[jb * nr..(jb + 1) * nr],
                b,
                spec.transb,
                col0,
                nr.min(n - col0),
                n,
                k,
                &mut cvt,
            );
        }
    }
    if bt_obs::enabled() {
        count_pack_bytes(kern.prec, (n_panels * bpb) as u64);
    }
    let (b_pack, sb, colsum) = (&b_pack, &sb, &colsum);

    let apb = kern.a_panel_bytes(k);
    c[..m * n]
        .par_chunks_mut(PANEL_ROWS * n)
        .enumerate()
        .for_each(|(chunk_idx, c_panel)| {
            let row0 = chunk_idx * PANEL_ROWS;
            let rows = c_panel.len() / n;
            let m_panels = rows.div_ceil(mr);
            with_worker_scratch(|scratch| {
                let (a_pack, sa, row_buf, cvt) = scratch.lowp_a_panels(m_panels * apb, m_panels * mr, k, k.max(nr));
                for ib in 0..m_panels {
                    pack_a_panel_lowp(
                        kern,
                        &mut a_pack[ib * apb..(ib + 1) * apb],
                        &mut sa[ib * mr..(ib + 1) * mr],
                        a,
                        spec.transa,
                        row0 + ib * mr,
                        mr.min(rows - ib * mr),
                        m,
                        k,
                        row_buf,
                        cvt,
                    );
                }
                if bt_obs::enabled() {
                    count_pack_bytes(kern.prec, (m_panels * apb) as u64);
                }
                for jb in 0..n_panels {
                    let col0 = jb * nr;
                    let cols = nr.min(n - col0);
                    let b_panel = &b_pack[jb * bpb..(jb + 1) * bpb];
                    for ib in 0..m_panels {
                        let r = mr.min(rows - ib * mr);
                        let mut acc = [0.0f32; MR_MAX * NR_MAX];
                        kern.run(
                            k,
                            &a_pack[ib * apb..(ib + 1) * apb],
                            b_panel,
                            &mut acc,
                            &sa[ib * mr..(ib + 1) * mr],
                            &sb[jb * nr..(jb + 1) * nr],
                            &colsum[jb * nr..(jb + 1) * nr],
                        );
                        for i in 0..r {
                            let row = ib * mr + i;
                            store_row(
                                &mut c_panel[row * n + col0..row * n + col0 + cols],
                                &acc[i * nr..i * nr + cols],
                                col0,
                                alpha,
                                beta,
                                epilogue,
                            );
                        }
                    }
                }
            });
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::gemm_ref;
    use bt_tensor::compare::assert_close;
    use bt_tensor::rng::Xoshiro256StarStar;

    fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect()
    }

    fn check_against_ref(spec: GemmSpec, m: usize, n: usize, k: usize) {
        let a = rand_vec(m * k, 1);
        let b = rand_vec(k * n, 2);
        let mut c1 = rand_vec(m * n, 3);
        let mut c2 = c1.clone();
        sgemm(spec, m, n, k, &a, &b, &mut c1);
        gemm_ref(
            spec.transa,
            spec.transb,
            m,
            n,
            k,
            spec.alpha,
            &a,
            &b,
            spec.beta,
            &mut c2,
        );
        assert_close(&c1, &c2, 1e-4 * k as f32);
    }

    #[test]
    fn matches_reference_various_shapes() {
        for &(m, n, k) in &[
            (1, 1, 1),
            (3, 5, 7),
            (32, 32, 32),
            (33, 65, 127),
            (64, 256, 64),
            (100, 30, 300),
        ] {
            check_against_ref(GemmSpec::nn(), m, n, k);
        }
    }

    #[test]
    fn matches_reference_microtile_remainders() {
        // Shapes straddling every MR/NR remainder class.
        for &(m, n, k) in &[(7, 9, 5), (8, 8, 8), (9, 7, 16), (15, 17, 1), (31, 33, 40)] {
            check_against_ref(GemmSpec::nn(), m, n, k);
            check_against_ref(GemmSpec::nt(), m, n, k);
        }
    }

    #[test]
    fn matches_reference_transposed() {
        check_against_ref(GemmSpec::nt(), 33, 47, 65);
        check_against_ref(
            GemmSpec {
                transa: true,
                transb: false,
                alpha: 1.0,
                beta: 0.0,
            },
            17,
            29,
            31,
        );
        check_against_ref(
            GemmSpec {
                transa: true,
                transb: true,
                alpha: 0.5,
                beta: 0.25,
            },
            19,
            23,
            40,
        );
    }

    #[test]
    fn alpha_beta_respected() {
        check_against_ref(GemmSpec::nn().alpha(2.5).beta(-0.5), 40, 40, 40);
    }

    #[test]
    fn k_zero_scales_c_by_beta() {
        let mut c = vec![2.0f32; 4];
        sgemm(GemmSpec::nn().beta(0.5), 2, 2, 0, &[], &[], &mut c);
        assert_eq!(c, vec![1.0; 4]);
    }

    #[test]
    fn empty_output_is_noop() {
        let mut c: Vec<f32> = vec![];
        sgemm(GemmSpec::nn(), 0, 5, 3, &[0.0; 0], &[0.0; 15], &mut c);
        sgemm(GemmSpec::nn(), 5, 0, 3, &[0.0; 15], &[], &mut c);
    }

    #[test]
    fn epilogue_applied_per_column() {
        let m = 7;
        let n = 9;
        let k = 11;
        let a = rand_vec(m * k, 4);
        let b = rand_vec(k * n, 5);
        let bias: Vec<f32> = (0..n).map(|j| j as f32).collect();
        let mut c1 = vec![0.0f32; m * n];
        let mut c2 = vec![0.0f32; m * n];
        sgemm_epilogue(GemmSpec::nn(), m, n, k, &a, &b, &mut c1, &|j, x| (x + bias[j]).max(0.0));
        gemm_ref(false, false, m, n, k, 1.0, &a, &b, 0.0, &mut c2);
        for i in 0..m {
            for j in 0..n {
                let expect = (c2[i * n + j] + j as f32).max(0.0);
                assert!((c1[i * n + j] - expect).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn epilogue_applied_when_k_zero() {
        let mut c = vec![1.0f32, -2.0, 3.0, -4.0];
        sgemm_epilogue(GemmSpec::nn().beta(1.0), 2, 2, 0, &[], &[], &mut c, &|j, x| {
            x + j as f32 * 10.0
        });
        assert_eq!(c, vec![1.0, 8.0, 3.0, 6.0]);
    }

    #[test]
    fn large_parallel_shape_matches() {
        // Exercises multiple row panels and both packing paths.
        check_against_ref(GemmSpec::nn(), 200, 70, 600);
    }
}
