//! Tests for the `BYTE_GEMM_PREC` dispatch machinery: request parsing, the
//! precision × ISA implementation-resolution layer, and end-to-end dispatch
//! accuracy for every precision through the public `sgemm` entry point.
//!
//! Like `isa_dispatch.rs`, env-var integration is exercised by the
//! `scripts/check.sh` matrix, which reruns this binary under every
//! `BYTE_GEMM_PREC` × `BYTE_GEMM_ISA` combination. One combined test first
//! asserts the env selection was honored (before any programmatic override
//! can shadow it), then walks every precision programmatically.

use bt_gemm::lowp::{lowp_impl_isas, resolve_lowp_tier};
use bt_gemm::{
    active_precision, dot_error_bound, int8_dot_error_bound, lowp_impl, parse_prec_request, resolve_lowp_kernel,
    set_active_precision, sgemm, GemmSpec, Isa, Precision,
};
use bt_tensor::rng::Xoshiro256StarStar;

fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect()
}

#[test]
fn f32_never_resolves_a_lowp_kernel() {
    for isa in Isa::ALL {
        assert!(resolve_lowp_kernel(Precision::F32, isa).is_none());
    }
}

#[test]
fn every_low_precision_has_a_scalar_implementation() {
    for prec in [Precision::F16, Precision::Bf16, Precision::Int8] {
        let isas = lowp_impl_isas(prec);
        assert!(isas.contains(&Isa::Scalar), "{prec}: {isas:?}");
        let kern = lowp_impl(prec, Isa::Scalar).unwrap();
        assert_eq!(kern.prec, prec);
        assert_eq!(kern.isa, Isa::Scalar);
    }
}

#[test]
fn resolution_degrades_downward_never_upward() {
    // A scalar pin must stay scalar even when wider impls exist.
    let (isa, warn) = resolve_lowp_tier(Precision::F16, Isa::Scalar, &[Isa::Scalar, Isa::Avx2, Isa::Avx512]);
    assert_eq!(isa, Isa::Scalar);
    assert!(warn.is_none());
    // A wide request with only scalar available degrades with a warning
    // that names the precision, the request, and the substitute.
    let (isa, warn) = resolve_lowp_tier(Precision::Bf16, Isa::Avx512, &[Isa::Scalar]);
    assert_eq!(isa, Isa::Scalar);
    let warn = warn.expect("degrade must warn");
    assert!(warn.contains("bf16"), "warning names the precision: {warn}");
    assert!(warn.contains("avx512"), "warning names the request: {warn}");
    assert!(warn.contains("scalar"), "warning names the substitute: {warn}");
}

#[test]
fn resolved_kernel_matches_requested_precision_on_this_host() {
    for prec in [Precision::F16, Precision::Bf16, Precision::Int8] {
        for isa in bt_gemm::available_isas() {
            let kern = resolve_lowp_kernel(prec, isa).expect("every precision has at least the scalar tier");
            assert_eq!(kern.prec, prec);
            assert!(kern.isa <= isa, "resolved {} above the {} request", kern.isa, isa);
        }
    }
}

/// Runs `sgemm` at the current active precision and asserts every output
/// element tracks the f64 reference product within the precision's
/// documented error bound.
fn check_sgemm_tracks_reference(prec: Precision, m: usize, n: usize, k: usize) {
    let a = rand_vec(m * k, 0xA5 + (m * 31 + k) as u64);
    let b = rand_vec(k * n, 0xB6 + (n * 17 + k) as u64);
    let mut c = vec![f32::NAN; m * n];
    sgemm(GemmSpec::nn(), m, n, k, &a, &b, &mut c);
    // Int8 scales are deterministic from the operands: per-row |max|/127 for
    // A, per-column for B (1.0 when the vector is all-zero).
    let sa: Vec<f32> = (0..m)
        .map(|i| bt_gemm::lowp::int8_scale(a[i * k..(i + 1) * k].iter().fold(0.0f32, |x, &v| x.max(v.abs()))))
        .collect();
    let sb: Vec<f32> = (0..n)
        .map(|j| bt_gemm::lowp::int8_scale((0..k).fold(0.0f32, |x, p| x.max(b[p * n + j].abs()))))
        .collect();
    for i in 0..m {
        for j in 0..n {
            let a_row: Vec<f32> = a[i * k..(i + 1) * k].to_vec();
            let b_col: Vec<f32> = (0..k).map(|p| b[p * n + j]).collect();
            let exact: f64 = a_row.iter().zip(&b_col).map(|(&x, &y)| x as f64 * y as f64).sum();
            let sum_abs: f64 = a_row
                .iter()
                .zip(&b_col)
                .map(|(&x, &y)| (x as f64 * y as f64).abs())
                .sum();
            let bound = match prec {
                Precision::Int8 => int8_dot_error_bound(&a_row, &b_col, sa[i], sb[j]),
                _ => dot_error_bound(prec, k, sum_abs),
            };
            let got = c[i * n + j] as f64;
            assert!(
                (got - exact).abs() <= bound,
                "{prec} ({m}x{n}x{k}) c[{i},{j}] = {got}, exact {exact}, bound {bound}"
            );
        }
    }
}

/// First asserts the lazy env selection (check.sh reruns this binary under
/// every `BYTE_GEMM_PREC` value), then pins each precision programmatically
/// and verifies dispatch accuracy — including the 1-token and empty shapes
/// the variable-length serving path produces.
#[test]
fn env_selection_honored_then_every_precision_dispatches_accurately() {
    let expect = std::env::var("BYTE_GEMM_PREC")
        .map(|s| parse_prec_request(&s).expect("driver sets only valid values"))
        .unwrap_or(Precision::F32);
    assert_eq!(
        active_precision(),
        expect,
        "BYTE_GEMM_PREC must drive the first active_precision() read"
    );

    for prec in Precision::ALL {
        set_active_precision(prec);
        assert_eq!(active_precision(), prec);
        check_sgemm_tracks_reference(prec, 33, 29, 48);
        check_sgemm_tracks_reference(prec, 1, 7, 16); // 1-token sequence
        check_sgemm_tracks_reference(prec, 4, 3, 0); // degenerate depth
        check_sgemm_tracks_reference(prec, 0, 5, 8); // empty output
    }
    set_active_precision(expect);
}
