//! Property-based tests: every tuned GEMM path agrees with the naive
//! reference on arbitrary shapes, transposes and scaling factors.

use bt_gemm::batched::{batched_sgemm, BatchedArgs};
use bt_gemm::grouped::{
    grouped_sgemm, grouped_sgemm_strided, GroupedConfig, GroupedProblem, NoEpilogue, NoTransform, Scheduler,
    StridedOutput,
};
use bt_gemm::lowp::{
    a_panel_code, b_panel_code, bf16_bits, bf16_to_f32, f16_bits, int8_scale, lowp_impl, lowp_impl_isas,
    pack_a_panel_lowp, pack_b_panel_lowp, quantize_i8,
};
use bt_gemm::micro::{pack_a_panel, pack_b_panel};
use bt_gemm::{gemm_ref, sgemm, sgemm_epilogue, GemmSpec, Precision};
use bt_tensor::compare::max_abs_diff;
use bt_tensor::half::f16;
use bt_tensor::rng::Xoshiro256StarStar;
use proptest::prelude::*;

/// Decoded narrow value the packer must have stored for source value `x`,
/// plus the round-trip tolerance the storage format guarantees (f16/bf16:
/// half-ulp relative; int8: half a quantization step).
fn lowp_expected(prec: Precision, x: f32, inv_scale: f32) -> (f32, f64) {
    match prec {
        Precision::F16 => (f16::from_bits(f16_bits(x)).to_f32(), x.abs() as f64 / 2048.0 + 1e-7),
        Precision::Bf16 => (bf16_to_f32(bf16_bits(x)), x.abs() as f64 / 256.0 + 1e-7),
        Precision::Int8 => (quantize_i8(x, inv_scale) as f32, 0.5000001 / inv_scale as f64 + 1e-7),
        Precision::F32 => unreachable!("f32 has no lowp packer"),
    }
}

fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_sgemm_matches_reference(
        m in 1usize..48,
        n in 1usize..48,
        k in 1usize..96,
        transa: bool,
        transb: bool,
        alpha in -2.0f32..2.0,
        beta in -1.0f32..1.0,
        seed in 0u64..1000,
    ) {
        let a = rand_vec(m * k, seed);
        let b = rand_vec(k * n, seed + 1);
        let mut c1 = rand_vec(m * n, seed + 2);
        let mut c2 = c1.clone();
        let spec = GemmSpec { transa, transb, alpha, beta };
        sgemm(spec, m, n, k, &a, &b, &mut c1);
        gemm_ref(transa, transb, m, n, k, alpha, &a, &b, beta, &mut c2);
        prop_assert!(max_abs_diff(&c1, &c2) < 1e-3, "diff {}", max_abs_diff(&c1, &c2));
    }

    #[test]
    fn prop_microkernel_remainders_and_degenerate_k(
        // m and n are drawn as q·8 + r with r in 1..8, so every case lands
        // off the MR/NR grid — the edge strips the microkernel must pad.
        mq in 0usize..4,
        mr in 1usize..8,
        nq in 0usize..4,
        nr in 1usize..8,
        k in 0usize..64, // includes the degenerate k = 0 (C = beta·C)
        transa: bool,
        transb: bool,
        alpha in -2.0f32..2.0,
        beta in -1.0f32..1.0,
        seed in 0u64..1000,
    ) {
        let m = mq * 8 + mr;
        let n = nq * 8 + nr;
        let a = rand_vec(m * k, seed);
        let b = rand_vec(k * n, seed + 1);
        let mut c1 = rand_vec(m * n, seed + 2);
        let mut c2 = c1.clone();
        let spec = GemmSpec { transa, transb, alpha, beta };
        sgemm(spec, m, n, k, &a, &b, &mut c1);
        gemm_ref(transa, transb, m, n, k, alpha, &a, &b, beta, &mut c2);
        prop_assert!(max_abs_diff(&c1, &c2) < 1e-3, "diff {}", max_abs_diff(&c1, &c2));
    }

    #[test]
    fn prop_epilogue_composes_with_plain_gemm(
        m in 1usize..24,
        n in 1usize..24,
        k in 1usize..48,
        seed in 0u64..1000,
    ) {
        let a = rand_vec(m * k, seed);
        let b = rand_vec(k * n, seed + 1);
        let bias: Vec<f32> = (0..n).map(|j| j as f32 * 0.1 - 0.5).collect();
        let mut fused = vec![0.0f32; m * n];
        sgemm_epilogue(GemmSpec::nn(), m, n, k, &a, &b, &mut fused, &|j, x| (x + bias[j]).tanh());
        let mut plain = vec![0.0f32; m * n];
        sgemm(GemmSpec::nn(), m, n, k, &a, &b, &mut plain);
        for i in 0..m {
            for j in 0..n {
                let expect = (plain[i * n + j] + bias[j]).tanh();
                prop_assert!((fused[i * n + j] - expect).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn prop_batched_matches_per_problem_gemm(
        batch in 1usize..6,
        m in 1usize..16,
        n in 1usize..16,
        k in 1usize..24,
        transb: bool,
        seed in 0u64..1000,
    ) {
        let args = BatchedArgs::dense(batch, m, n, k);
        let a = rand_vec(batch * m * k, seed);
        let b = rand_vec(batch * k * n, seed + 1);
        let mut c = vec![0.0f32; batch * m * n];
        let spec = GemmSpec { transa: false, transb, alpha: 1.0, beta: 0.0 };
        batched_sgemm(spec, args, &a, &b, &mut c);
        for i in 0..batch {
            let mut expect = vec![0.0f32; m * n];
            gemm_ref(false, transb, m, n, k, 1.0, &a[i * m * k..], &b[i * k * n..], 0.0, &mut expect);
            prop_assert!(max_abs_diff(&c[i * m * n..(i + 1) * m * n], &expect) < 1e-3);
        }
    }

    #[test]
    fn prop_grouped_matches_reference_any_shapes(
        shapes in proptest::collection::vec((1usize..40, 1usize..40, 1usize..32), 1..8),
        per_tile: bool,
        seed in 0u64..1000,
    ) {
        let a_bufs: Vec<Vec<f32>> = shapes.iter().enumerate()
            .map(|(i, &(m, _, k))| rand_vec(m * k, seed + i as u64 * 2)).collect();
        let b_bufs: Vec<Vec<f32>> = shapes.iter().enumerate()
            .map(|(i, &(_, n, k))| rand_vec(k * n, seed + i as u64 * 2 + 1)).collect();
        let problems: Vec<GroupedProblem<'_>> = shapes.iter().enumerate()
            .map(|(i, &(m, n, k))| GroupedProblem {
                m, n, k, transb: false, alpha: 1.0, a: &a_bufs[i], b: &b_bufs[i],
            }).collect();
        let mut cs: Vec<Vec<f32>> = shapes.iter().map(|&(m, n, _)| vec![0.0; m * n]).collect();
        let config = GroupedConfig {
            scheduler: if per_tile { Scheduler::PerTile } else { Scheduler::WarpPrefetch },
            num_ctas: 7, // deliberately odd to stress the round-robin walk
            ..Default::default()
        };
        grouped_sgemm(
            &problems,
            cs.iter_mut().map(|c| c.as_mut_slice()).collect(),
            config,
            &NoEpilogue,
            &NoTransform,
        );
        for (i, &(m, n, k)) in shapes.iter().enumerate() {
            let mut expect = vec![0.0f32; m * n];
            gemm_ref(false, false, m, n, k, 1.0, &a_bufs[i], &b_bufs[i], 0.0, &mut expect);
            prop_assert!(max_abs_diff(&cs[i], &expect) < 1e-3);
        }
    }

    #[test]
    fn prop_pack_b_zero_pads_and_roundtrips(
        // Geometry is drawn independently of the active kernel: the packers
        // must hold their invariants for every NR in the family (and any
        // future NEON-width tier).
        nr_sel in 0usize..3,
        n in 1usize..40,
        k in 0usize..24,
        trans: bool,
        panel in 0usize..4,
        seed in 0u64..1000,
    ) {
        let nr = [8usize, 16, 4][nr_sel];
        let col0 = (panel * nr).min(n.saturating_sub(1));
        let c = nr.min(n - col0);
        let b = rand_vec(k * n, seed);
        // Row-major k×n or its n×k transpose must pack identically.
        let src = if trans {
            let mut t = vec![0.0f32; n * k];
            for p in 0..k {
                for j in 0..n {
                    t[j * k + p] = b[p * n + j];
                }
            }
            t
        } else {
            b.clone()
        };
        // NaN canary: every lane of the panel must be overwritten.
        let mut dst = vec![f32::NAN; k * nr];
        pack_b_panel(&mut dst, &src, trans, col0, c, n, k, nr);
        for p in 0..k {
            for j in 0..nr {
                let got = dst[p * nr + j];
                if j < c {
                    // k-major interleave round-trip: lane (p, j) holds B[p, col0+j].
                    prop_assert_eq!(got.to_bits(), b[p * n + col0 + j].to_bits());
                } else {
                    prop_assert_eq!(got.to_bits(), 0.0f32.to_bits(), "short strip must be zero-padded");
                }
            }
        }
    }

    #[test]
    fn prop_pack_a_zero_pads_and_roundtrips(
        mr_sel in 0usize..3,
        m in 1usize..40,
        k in 0usize..24,
        trans: bool,
        panel in 0usize..4,
        seed in 0u64..1000,
    ) {
        let mr = [8usize, 16, 4][mr_sel];
        let row0 = (panel * mr).min(m.saturating_sub(1));
        let r = mr.min(m - row0);
        let a = rand_vec(m * k, seed);
        let src = if trans {
            let mut t = vec![0.0f32; m * k];
            for i in 0..m {
                for p in 0..k {
                    t[p * m + i] = a[i * k + p];
                }
            }
            t
        } else {
            a.clone()
        };
        let mut dst = vec![f32::NAN; k * mr];
        pack_a_panel(&mut dst, &src, trans, row0, r, m, k, mr);
        for p in 0..k {
            for i in 0..mr {
                let got = dst[p * mr + i];
                if i < r {
                    prop_assert_eq!(got.to_bits(), a[(row0 + i) * k + p].to_bits());
                } else {
                    prop_assert_eq!(got.to_bits(), 0.0f32.to_bits(), "short strip must be zero-padded");
                }
            }
        }
    }

    #[test]
    fn prop_padded_lanes_never_reach_a_tile_store(
        // Strided grouped outputs with gaps between placements: if any
        // padded microkernel lane leaked through a `TileStore`, it would
        // land in a gap (or trip the DisjointWriter claim map in debug).
        // NaN sentinels in the gaps must survive every tier's remainder
        // handling.
        shapes in proptest::collection::vec((1usize..34, 1usize..18, 0usize..20), 1..4),
        pad in 1usize..7,
        seed in 0u64..1000,
    ) {
        let a_bufs: Vec<Vec<f32>> = shapes.iter().enumerate()
            .map(|(i, &(m, _, k))| rand_vec(m * k, seed + i as u64 * 2)).collect();
        let b_bufs: Vec<Vec<f32>> = shapes.iter().enumerate()
            .map(|(i, &(_, n, k))| rand_vec(k * n, seed + i as u64 * 2 + 1)).collect();
        let problems: Vec<GroupedProblem<'_>> = shapes.iter().enumerate()
            .map(|(i, &(m, n, k))| GroupedProblem {
                m, n, k, transb: false, alpha: 1.0, a: &a_bufs[i], b: &b_bufs[i],
            }).collect();
        // Placements side by side in one row, `pad` sentinel columns apart.
        let max_m = shapes.iter().map(|&(m, ..)| m).max().unwrap();
        let ld: usize = shapes.iter().map(|&(_, n, _)| n + pad).sum();
        let mut offset = 0;
        let placements: Vec<StridedOutput> = shapes.iter().map(|&(_, n, _)| {
            let pl = StridedOutput { offset, ld };
            offset += n + pad;
            pl
        }).collect();
        let mut out = vec![f32::NAN; max_m * ld];
        grouped_sgemm_strided(&problems, &mut out, &placements, GroupedConfig::default(), &NoEpilogue, &NoTransform);
        for (i, &(m, n, k)) in shapes.iter().enumerate() {
            let mut expect = vec![0.0f32; m * n];
            gemm_ref(false, false, m, n, k, 1.0, &a_bufs[i], &b_bufs[i], 0.0, &mut expect);
            for r in 0..m {
                for j in 0..n {
                    let got = out[placements[i].offset + r * ld + j];
                    prop_assert!((got - expect[r * n + j]).abs() < 1e-3, "valid region wrong at ({r},{j})");
                }
                for j in n..n + pad {
                    let got = out[placements[i].offset + r * ld + j];
                    prop_assert!(got.is_nan(), "padded lane leaked into the gap at ({r},{j}): {got}");
                }
            }
            // Rows past this problem's m (shorter than the tallest problem)
            // are also never-stored territory.
            for r in m..max_m {
                for j in 0..n + pad {
                    let got = out[placements[i].offset + r * ld + j];
                    prop_assert!(got.is_nan(), "write past problem rows at ({r},{j}): {got}");
                }
            }
        }
    }

    #[test]
    fn prop_lowp_pack_b_neutral_pads_and_roundtrips(
        // Every available precision × ISA implementation must uphold the
        // same packing invariants the f32 packers guarantee: pad lanes hold
        // the format's neutral code (decoding to 0), valid lanes hold the
        // exact deterministic narrowing of the source, and dequantizing
        // round-trips within the format's documented step.
        prec_sel in 0usize..3,
        n in 1usize..40,
        k in 0usize..24,
        trans: bool,
        panel in 0usize..3,
        seed in 0u64..1000,
    ) {
        let prec = [Precision::F16, Precision::Bf16, Precision::Int8][prec_sel];
        let b = rand_vec(k * n, seed);
        let src = if trans {
            let mut t = vec![0.0f32; n * k];
            for p in 0..k {
                for j in 0..n {
                    t[j * k + p] = b[p * n + j];
                }
            }
            t
        } else {
            b.clone()
        };
        for isa in lowp_impl_isas(prec) {
            let kern = lowp_impl(prec, isa).unwrap();
            let nr = kern.nr;
            let col0 = (panel * nr).min(n.saturating_sub(1));
            let c = nr.min(n - col0);
            // 0xAB canary: every packed byte must be overwritten.
            let mut dst = vec![0xABu8; kern.b_panel_bytes(k)];
            let mut sb = vec![f32::NAN; nr];
            let mut colsum = vec![i32::MIN; nr];
            let mut cvt = vec![0u16; k.max(nr)];
            pack_b_panel_lowp(kern, &mut dst, &mut sb, &mut colsum, &src, trans, col0, c, n, k, &mut cvt);
            for j in 0..nr {
                let (scale, expect_sum) = if j < c && prec == Precision::Int8 {
                    let colmax = (0..k).fold(0.0f32, |x, p| x.max(b[p * n + col0 + j].abs()));
                    prop_assert_eq!(sb[j], int8_scale(colmax), "{} {}: sb[{}]", prec, isa, j);
                    let sum: i32 = (0..k).map(|p| b_panel_code(kern, &dst, p, j) as i32).sum();
                    (sb[j], sum)
                } else {
                    prop_assert_eq!(sb[j], 1.0, "{} {}: sb[{}] of a float/pad column", prec, isa, j);
                    (1.0, 0)
                };
                prop_assert_eq!(colsum[j], expect_sum, "{} {}: colsum[{}]", prec, isa, j);
                for p in 0..kern.padded_k(k) {
                    let code = b_panel_code(kern, &dst, p, j);
                    if j < c && p < k {
                        let x = b[p * n + col0 + j];
                        let (expect, tol) = lowp_expected(prec, x, scale.recip());
                        prop_assert_eq!(code.to_bits(), expect.to_bits(), "{} {}: lane ({p},{j})", prec, isa);
                        let scale = if prec == Precision::Int8 { scale } else { 1.0 };
                        prop_assert!(
                            ((code * scale) as f64 - x as f64).abs() <= tol,
                            "{} {}: round-trip at ({p},{j}): {} vs {x}", prec, isa, code * scale
                        );
                    } else {
                        prop_assert_eq!(code.to_bits(), 0.0f32.to_bits(), "{} {}: pad lane ({p},{j}) not neutral", prec, isa);
                    }
                }
            }
        }
    }

    #[test]
    fn prop_lowp_pack_a_neutral_pads_and_roundtrips(
        prec_sel in 0usize..3,
        m in 1usize..40,
        k in 0usize..24,
        trans: bool,
        panel in 0usize..3,
        seed in 0u64..1000,
    ) {
        let prec = [Precision::F16, Precision::Bf16, Precision::Int8][prec_sel];
        let a = rand_vec(m * k, seed);
        let src = if trans {
            let mut t = vec![0.0f32; k * m];
            for i in 0..m {
                for p in 0..k {
                    t[p * m + i] = a[i * k + p];
                }
            }
            t
        } else {
            a.clone()
        };
        for isa in lowp_impl_isas(prec) {
            let kern = lowp_impl(prec, isa).unwrap();
            let mr = kern.mr;
            let row0 = (panel * mr).min(m.saturating_sub(1));
            let r = mr.min(m - row0);
            let mut dst = vec![0xABu8; kern.a_panel_bytes(k)];
            let mut sa = vec![f32::NAN; mr];
            let mut row_buf = vec![0.0f32; k];
            let mut cvt = vec![0u16; k.max(1)];
            pack_a_panel_lowp(kern, &mut dst, &mut sa, &src, trans, row0, r, m, k, &mut row_buf, &mut cvt);
            for i in 0..mr {
                let scale = if i < r && prec == Precision::Int8 {
                    let rowmax = a[(row0 + i) * k..(row0 + i) * k + k].iter().fold(0.0f32, |x, &v| x.max(v.abs()));
                    prop_assert_eq!(sa[i], int8_scale(rowmax), "{} {}: sa[{}]", prec, isa, i);
                    sa[i]
                } else {
                    prop_assert_eq!(sa[i], 1.0, "{} {}: sa[{}] of a float/pad row", prec, isa, i);
                    1.0
                };
                for p in 0..kern.padded_k(k) {
                    let code = a_panel_code(kern, &dst, p, i);
                    if i < r && p < k {
                        let x = a[(row0 + i) * k + p];
                        let (expect, tol) = lowp_expected(prec, x, scale.recip());
                        prop_assert_eq!(code.to_bits(), expect.to_bits(), "{} {}: lane ({p},{i})", prec, isa);
                        let scale = if prec == Precision::Int8 { scale } else { 1.0 };
                        prop_assert!(
                            ((code * scale) as f64 - x as f64).abs() <= tol,
                            "{} {}: round-trip at ({p},{i}): {} vs {x}", prec, isa, code * scale
                        );
                    } else {
                        prop_assert_eq!(code.to_bits(), 0.0f32.to_bits(), "{} {}: pad lane ({p},{i}) not neutral", prec, isa);
                    }
                }
            }
        }
    }

    #[test]
    fn prop_strided_grouped_matches_contiguous(
        m in 1usize..64,
        heads in 1usize..4,
        head in 1usize..16,
        seed in 0u64..1000,
    ) {
        // heads problems of shape m×head writing side by side into one
        // [m, heads*head] buffer — the fused-MHA store pattern.
        let hidden = heads * head;
        let k = 8;
        let a_bufs: Vec<Vec<f32>> = (0..heads).map(|h| rand_vec(m * k, seed + h as u64)).collect();
        let b_bufs: Vec<Vec<f32>> = (0..heads).map(|h| rand_vec(k * head, seed + 100 + h as u64)).collect();
        let problems: Vec<GroupedProblem<'_>> = (0..heads).map(|h| GroupedProblem {
            m, n: head, k, transb: false, alpha: 1.0, a: &a_bufs[h], b: &b_bufs[h],
        }).collect();
        let placements: Vec<StridedOutput> = (0..heads).map(|h| StridedOutput {
            offset: h * head, ld: hidden,
        }).collect();
        let mut out = vec![0.0f32; m * hidden];
        grouped_sgemm_strided(&problems, &mut out, &placements, GroupedConfig::default(), &NoEpilogue, &NoTransform);
        for h in 0..heads {
            let mut expect = vec![0.0f32; m * head];
            gemm_ref(false, false, m, head, k, 1.0, &a_bufs[h], &b_bufs[h], 0.0, &mut expect);
            for i in 0..m {
                for j in 0..head {
                    prop_assert!((out[i * hidden + h * head + j] - expect[i * head + j]).abs() < 1e-4);
                }
            }
        }
    }
}
