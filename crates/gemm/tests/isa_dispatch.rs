//! Unit tests for the `BYTE_GEMM_ISA` dispatch machinery: request parsing,
//! availability fallback, the strict programmatic override, and the
//! regression guard that the scalar tier's arithmetic is independent of
//! which dispatch tier is (or was) selected.
//!
//! The env-var integration itself is covered by the `scripts/check.sh`
//! matrix, which reruns the GEMM suites under `BYTE_GEMM_ISA=scalar` and
//! `BYTE_GEMM_ISA=auto` — in-process env mutation would race the lazy
//! one-shot selection, so these tests exercise the pure resolution layer
//! plus the programmatic setter instead.

use bt_gemm::isa::{self, parse_isa_request, resolve_request, Isa, IsaRequest};
use bt_gemm::{sgemm, GemmSpec};
use bt_tensor::rng::Xoshiro256StarStar;
use std::sync::Mutex;

/// Serializes tests that flip the process-wide active tier.
static ISA_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn parse_accepts_every_tier_name() {
    assert_eq!(parse_isa_request("auto"), Ok(IsaRequest::Auto));
    assert_eq!(parse_isa_request("scalar"), Ok(IsaRequest::Exact(Isa::Scalar)));
    assert_eq!(parse_isa_request("avx2"), Ok(IsaRequest::Exact(Isa::Avx2)));
    assert_eq!(parse_isa_request("avx512"), Ok(IsaRequest::Exact(Isa::Avx512)));
}

#[test]
fn parse_is_case_and_whitespace_insensitive() {
    assert_eq!(parse_isa_request("  AVX512 \n"), Ok(IsaRequest::Exact(Isa::Avx512)));
    assert_eq!(parse_isa_request("Auto"), Ok(IsaRequest::Auto));
}

#[test]
fn parse_rejects_unknown_value_with_clear_message() {
    let err = parse_isa_request("sse9").unwrap_err();
    assert!(err.contains("unknown value `sse9`"), "got: {err}");
    // The message must teach the accepted set.
    for name in ["scalar", "avx2", "avx512", "auto"] {
        assert!(err.contains(name), "message must list `{name}`: {err}");
    }
}

#[test]
fn resolve_auto_picks_widest_available() {
    let (isa, warn) = resolve_request(IsaRequest::Auto, &[Isa::Scalar, Isa::Avx2]);
    assert_eq!(isa, Isa::Avx2);
    assert!(warn.is_none());
    let (isa, _) = resolve_request(IsaRequest::Auto, &[Isa::Scalar, Isa::Avx2, Isa::Avx512]);
    assert_eq!(isa, Isa::Avx512);
    let (isa, _) = resolve_request(IsaRequest::Auto, &[Isa::Scalar]);
    assert_eq!(isa, Isa::Scalar);
}

#[test]
fn resolve_exact_available_is_honored_without_warning() {
    let (isa, warn) = resolve_request(IsaRequest::Exact(Isa::Scalar), &[Isa::Scalar, Isa::Avx2, Isa::Avx512]);
    assert_eq!(isa, Isa::Scalar);
    assert!(warn.is_none());
}

#[test]
fn resolve_unavailable_tier_falls_back_with_warning() {
    // `avx512` requested on a host that only has AVX2: graceful downgrade,
    // and the warning names both the request and the substitute.
    let (isa, warn) = resolve_request(IsaRequest::Exact(Isa::Avx512), &[Isa::Scalar, Isa::Avx2]);
    assert_eq!(isa, Isa::Avx2);
    let warn = warn.expect("downgrade must warn");
    assert!(warn.contains("avx512"), "warning names the request: {warn}");
    assert!(warn.contains("`avx2`"), "warning names the fallback: {warn}");
}

#[test]
fn set_active_isa_is_strict_about_availability() {
    let _g = ISA_LOCK.lock().unwrap();
    let prev = isa::active_isa();
    for tier in Isa::ALL {
        if isa::available_isas().contains(&tier) {
            assert!(isa::set_active_isa(tier).is_ok());
            assert_eq!(isa::active_isa(), tier);
        } else {
            let err = isa::set_active_isa(tier).unwrap_err();
            assert!(err.contains(tier.name()), "error names the tier: {err}");
        }
    }
    isa::set_active_isa(prev).unwrap();
}

fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect()
}

fn sgemm_bits(m: usize, n: usize, k: usize) -> Vec<u32> {
    let a = rand_vec(m * k, 11);
    let b = rand_vec(k * n, 12);
    let mut c = vec![0.0f32; m * n];
    sgemm(GemmSpec::nn(), m, n, k, &a, &b, &mut c);
    c.into_iter().map(f32::to_bits).collect()
}

/// Regression guard for the PR 1 `fmadd` latent bug: the scalar tier's
/// contraction mode is pinned at kernel definition, so its results must be
/// **bitwise identical** no matter which other tier was active before, is
/// active concurrently elsewhere, or runs in between.
#[test]
fn scalar_results_independent_of_selected_tier() {
    let _g = ISA_LOCK.lock().unwrap();
    let prev = isa::active_isa();
    let (m, n, k) = (33, 29, 65);

    isa::set_active_isa(Isa::Scalar).unwrap();
    let reference = sgemm_bits(m, n, k);

    for tier in isa::available_isas() {
        // Interleave a run on another tier, then return to scalar.
        isa::set_active_isa(tier).unwrap();
        let _ = sgemm_bits(m, n, k);
        isa::set_active_isa(Isa::Scalar).unwrap();
        let again = sgemm_bits(m, n, k);
        assert_eq!(reference, again, "scalar output changed after running the {tier} tier");
    }
    isa::set_active_isa(prev).unwrap();
}

/// The scalar kernel reached through dispatch is the same arithmetic as the
/// kernel invoked directly — dispatch adds routing, never rounding.
#[test]
fn scalar_dispatch_matches_direct_kernel_invocation() {
    let _g = ISA_LOCK.lock().unwrap();
    let kern = isa::kernel_for(Isa::Scalar).unwrap();
    let (mr, nr) = (kern.mr, kern.nr);
    let kc = 37;
    let a = rand_vec(kc * mr, 21);
    let b = rand_vec(kc * nr, 22);
    let mut direct = vec![0.5f32; mr * nr];
    kern.run(kc, &a, &b, &mut direct);

    let prev = isa::active_isa();
    isa::set_active_isa(Isa::Scalar).unwrap();
    let mut via_active = vec![0.5f32; mr * nr];
    isa::active_kernel().run(kc, &a, &b, &mut via_active);
    isa::set_active_isa(prev).unwrap();

    let direct: Vec<u32> = direct.into_iter().map(f32::to_bits).collect();
    let via_active: Vec<u32> = via_active.into_iter().map(f32::to_bits).collect();
    assert_eq!(direct, via_active);
}
