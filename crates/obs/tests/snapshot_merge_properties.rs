//! Property suite for the shard-merge layer of `bt-obs` snapshots.
//!
//! The multi-shard router folds per-shard [`MetricsSnapshot`]s into a fleet
//! view, so the merge must behave like a commutative monoid over shard
//! state (any fold order, any grouping) and must not degrade histogram
//! resolution beyond the documented bucket geometry:
//!
//! * **associativity** — `merge(merge(a, b), c) ≡ merge(a, merge(b, c))`
//!   up to the synthesized `shard` label;
//! * **commutativity** — any permutation of the inputs merges to the same
//!   snapshot, again up to the label;
//! * **percentile resolution** — a merged percentile equals
//!   `bucket_upper(bucket_of(v))` for the true rank-`q` value `v` of the
//!   pooled population: exact for `v < HIST_LINEAR`, and within one power
//!   of two (`v ≤ reported < 2·v`) above.
//!
//! Snapshots are randomized with an explicit splitmix64 stream — no
//! ambient entropy, so failures replay.

use bt_obs::snapshot::{
    bucket_of, bucket_upper, merge, CounterDelta, HistogramWindow, MetricsSnapshot, HIST_BUCKETS, HIST_LINEAR,
};

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A randomized shard snapshot. Counter names overlap across shards (that
/// is the interesting case for summing); one name is a high-water mark to
/// exercise the max-merge path. Returns the raw histogram observations so
/// the percentile property can compare against ground truth.
fn random_snapshot(rng: &mut u64, shard: usize) -> (MetricsSnapshot, Vec<u64>) {
    let names = ["serve.offered", "serve.served", "kv.pool.blocks.high_water"];
    let counters = names
        .iter()
        .map(|n| {
            let delta = splitmix64(rng) % 10_000;
            CounterDelta {
                name: n.to_string(),
                delta,
                total: delta + splitmix64(rng) % 10_000,
            }
        })
        .collect();
    let mut hist = HistogramWindow {
        name: "serve.latency_us".to_string(),
        buckets: vec![0; HIST_BUCKETS],
        sum: 0,
    };
    let mut values = Vec::new();
    let n = 1 + (splitmix64(rng) % 200) as usize;
    for _ in 0..n {
        // Mix small (exact-bucket) and large (log-bucket) values.
        let v = if splitmix64(rng).is_multiple_of(2) {
            splitmix64(rng) % HIST_LINEAR as u64
        } else {
            splitmix64(rng) % 50_000_000
        };
        hist.buckets[bucket_of(v)] += 1;
        hist.sum += v;
        values.push(v);
    }
    (
        MetricsSnapshot {
            shard: format!("shard{shard}"),
            window_ms: 100 + splitmix64(rng) % 5_000,
            counters,
            histograms: vec![hist],
        },
        values,
    )
}

/// Equality up to the synthesized `shard` label (merge names its output by
/// input arity, which legitimately differs across groupings).
fn eq_modulo_label(a: &MetricsSnapshot, b: &MetricsSnapshot) -> bool {
    a.window_ms == b.window_ms && a.counters == b.counters && a.histograms == b.histograms
}

#[test]
fn merge_is_associative_modulo_shard_label() {
    let mut rng = 0xA11C_E5EEDu64;
    for _ in 0..50 {
        let (a, _) = random_snapshot(&mut rng, 0);
        let (b, _) = random_snapshot(&mut rng, 1);
        let (c, _) = random_snapshot(&mut rng, 2);
        let left = merge(&[merge(&[a.clone(), b.clone()]), c.clone()]);
        let right = merge(&[a.clone(), merge(&[b.clone(), c.clone()])]);
        let flat = merge(&[a, b, c]);
        assert!(eq_modulo_label(&left, &right), "grouping changed the merge");
        assert!(eq_modulo_label(&left, &flat), "nesting differs from a flat fold");
    }
}

#[test]
fn merge_is_commutative_modulo_shard_label() {
    let mut rng = 0x0B0B_51ED_u64;
    for _ in 0..50 {
        let (a, _) = random_snapshot(&mut rng, 0);
        let (b, _) = random_snapshot(&mut rng, 1);
        let (c, _) = random_snapshot(&mut rng, 2);
        let fwd = merge(&[a.clone(), b.clone(), c.clone()]);
        for perm in [
            vec![a.clone(), c.clone(), b.clone()],
            vec![b.clone(), a.clone(), c.clone()],
            vec![b.clone(), c.clone(), a.clone()],
            vec![c.clone(), a.clone(), b.clone()],
            vec![c.clone(), b.clone(), a.clone()],
        ] {
            assert!(eq_modulo_label(&fwd, &merge(&perm)), "input order changed the merge");
        }
    }
}

#[test]
fn merged_percentiles_stay_within_bucket_resolution_of_ground_truth() {
    let mut rng = 0xDEC1_0A7Eu64;
    for round in 0..30 {
        let shards = 2 + (splitmix64(&mut rng) % 7) as usize;
        let mut snaps = Vec::new();
        let mut pooled: Vec<u64> = Vec::new();
        for i in 0..shards {
            let (s, values) = random_snapshot(&mut rng, i);
            snaps.push(s);
            pooled.extend(values);
        }
        pooled.sort_unstable();
        let fleet = merge(&snaps);
        let hist = fleet.histogram("serve.latency_us").expect("merged histogram");
        assert_eq!(hist.count() as usize, pooled.len(), "merge loses no observations");
        for q in [0.10, 0.50, 0.90, 0.95, 0.99, 1.0] {
            // Same rank convention as HistogramWindow::percentile.
            let rank = ((q * pooled.len() as f64).ceil().max(1.0)) as usize;
            let truth = pooled[rank - 1];
            let reported = hist.percentile(q);
            assert_eq!(
                reported,
                bucket_upper(bucket_of(truth)),
                "round {round} q={q}: reported {reported} is not the bucket bound of {truth}"
            );
            if truth < HIST_LINEAR as u64 {
                assert_eq!(reported, truth, "linear-range percentiles are exact");
            } else {
                assert!(
                    truth <= reported && reported < truth.saturating_mul(2),
                    "round {round} q={q}: {reported} outside [v, 2v) of {truth}"
                );
            }
        }
    }
}

#[test]
fn high_water_counters_merge_by_max_while_flows_sum() {
    let mut rng = 0xFACADEu64;
    let (a, _) = random_snapshot(&mut rng, 0);
    let (b, _) = random_snapshot(&mut rng, 1);
    let fleet = merge(&[a.clone(), b.clone()]);
    let pick = |s: &MetricsSnapshot, n: &str| s.delta(n);
    assert_eq!(
        fleet.delta("serve.offered"),
        pick(&a, "serve.offered") + pick(&b, "serve.offered")
    );
    assert_eq!(
        fleet.delta("kv.pool.blocks.high_water"),
        pick(&a, "kv.pool.blocks.high_water").max(pick(&b, "kv.pool.blocks.high_water"))
    );
}

#[test]
fn associated_fn_is_the_free_fn() {
    let mut rng = 7u64;
    let (a, _) = random_snapshot(&mut rng, 0);
    let (b, _) = random_snapshot(&mut rng, 1);
    let via_assoc = MetricsSnapshot::merge(&[a.clone(), b.clone()]);
    let via_free = merge(&[a, b]);
    assert!(eq_modulo_label(&via_assoc, &via_free));
    assert_eq!(via_assoc.shard, "merge(2)");
}
