//! `bt-obs` — lock-free runtime telemetry for the ByteTransformer runtime.
//!
//! Three primitives, all cheap enough for hot paths:
//!
//! * **Spans** — `span!("gemm.grouped.cta")` pushes an enter event into a
//!   thread-local ring buffer and the guard's `Drop` pushes the matching
//!   exit; each event carries an `Instant`-based nanosecond timestamp plus a
//!   global monotonic sequence number so a merged profile is totally
//!   ordered even when timestamps tie.
//! * **Counters** — `static N: Counter = Counter::new("pool.launches")`
//!   bumped with relaxed atomics; `counter("name")` interns dynamic names.
//! * **Histograms** — fixed 312-bucket (256 linear + 56 log2) atomic
//!   histograms with p50/p95/p99 snapshots, for batch occupancy and
//!   queue-wait distributions.
//!
//! [`drain`] empties every thread's ring into a time-ordered
//! [`profile::Profile`] which renders as a hierarchical span tree,
//! `chrome://tracing` JSON, or a flat Prometheus-style text dump.
//!
//! Recording is gated at runtime by the `BYTE_OBS` environment variable
//! (`BYTE_OBS=off` disables it; [`set_enabled`] overrides programmatically)
//! and at compile time by the `obs-off` cargo feature, which swaps the
//! whole layer for inline no-ops — same API, zero cost (asserted by the
//! `obs_overhead` bench). [`warn_once`] works in **both** modes so
//! diagnostics never vanish.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod profile;
mod warn;

pub use warn::{reset_warnings, warn_once, warnings};

#[cfg(not(feature = "obs-off"))]
mod record;
#[cfg(not(feature = "obs-off"))]
pub use record::{counter, drain, enabled, set_enabled, span_dyn, timed, Counter, Histogram, LabelId, SpanGuard};

#[cfg(feature = "obs-off")]
mod noop;
#[cfg(feature = "obs-off")]
pub use noop::{counter, drain, enabled, set_enabled, span_dyn, timed, Counter, Histogram, LabelId, SpanGuard};

/// True when the recording layer is compiled in (i.e. the `obs-off` feature
/// is *not* active). Tests that assert on recorded telemetry early-return
/// when this is false so the full suite passes under `obs-off`.
pub const fn compiled() -> bool {
    cfg!(not(feature = "obs-off"))
}

/// Opens a span named by a string literal; the returned guard closes it on
/// drop. The label is interned once per call site via a hidden `static`, so
/// the steady-state cost is one atomic load plus two ring pushes (and a
/// single branch when recording is disabled).
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static __BT_OBS_LABEL: $crate::LabelId = $crate::LabelId::new($name);
        $crate::SpanGuard::enter(&__BT_OBS_LABEL)
    }};
}
