//! `bt-obs` — lock-free runtime telemetry for the ByteTransformer runtime.
//!
//! Three primitives, all cheap enough for hot paths:
//!
//! * **Spans** — `span!("gemm.grouped.cta")` pushes an enter event into a
//!   thread-local ring buffer and the guard's `Drop` pushes the matching
//!   exit; each event carries an `Instant`-based nanosecond timestamp plus a
//!   global monotonic sequence number so a merged profile is totally
//!   ordered even when timestamps tie.
//! * **Counters** — `static N: Counter = Counter::new("pool.launches")`
//!   bumped with relaxed atomics; `counter("name")` interns dynamic names.
//! * **Histograms** — fixed 312-bucket (256 linear + 56 log2) atomic
//!   histograms with p50/p95/p99 snapshots, for batch occupancy and
//!   queue-wait distributions.
//!
//! [`drain`] empties every thread's ring into a time-ordered
//! [`profile::Profile`] which renders as a hierarchical span tree,
//! `chrome://tracing` JSON, or a flat Prometheus-style text dump.
//!
//! Two layers sit on top of the rings:
//!
//! * **Request traces** — serving loops tag lifecycle point events with a
//!   [`trace::TraceId`] (`trace_mark!` / `trace_span!`);
//!   [`trace::reconstruct`] groups a drained profile into per-request
//!   causal timelines with exact queue-wait / compute / egress phase
//!   breakdowns. Names live in the documented [`names`] table.
//! * **Windowed snapshots** — [`snapshot::Aggregator`] diffs successive
//!   registry reads into per-window [`snapshot::MetricsSnapshot`]s (delta
//!   counters, windowed percentiles from raw bucket deltas, GEMM rates,
//!   shed breakdown) that merge across shards and export as JSON or
//!   Prometheus text; [`snapshot::SnapshotLoop`] runs the periodic loop at
//!   the `BYTE_OBS_WINDOW_MS` cadence.
//!
//! Recording is gated at runtime by the `BYTE_OBS` environment variable
//! (`BYTE_OBS=off` disables it; [`set_enabled`] overrides programmatically)
//! and at compile time by the `obs-off` cargo feature, which swaps the
//! whole layer for inline no-ops — same API, zero cost (asserted by the
//! `obs_overhead` bench). [`warn_once`] works in **both** modes so
//! diagnostics never vanish.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod names;
pub mod profile;
pub mod snapshot;
pub mod trace;
mod warn;

pub use trace::TraceId;
pub use warn::{reset_warnings, warn_once, warnings};

#[cfg(not(feature = "obs-off"))]
mod record;
#[cfg(not(feature = "obs-off"))]
pub use record::{
    assert_unique_registrations, counter, counter_values, drain, duplicate_registrations, enabled, histogram_windows,
    now_ns, set_enabled, span_dyn, timed, trace_mark, trace_mark_at, trace_span, Counter, Histogram, LabelId,
    SpanGuard,
};

#[cfg(feature = "obs-off")]
mod noop;
#[cfg(feature = "obs-off")]
pub use noop::{
    assert_unique_registrations, counter, counter_values, drain, duplicate_registrations, enabled, histogram_windows,
    now_ns, set_enabled, span_dyn, timed, trace_mark, trace_mark_at, trace_span, Counter, Histogram, LabelId,
    SpanGuard,
};

/// True when the recording layer is compiled in (i.e. the `obs-off` feature
/// is *not* active). Tests that assert on recorded telemetry early-return
/// when this is false so the full suite passes under `obs-off`.
pub const fn compiled() -> bool {
    cfg!(not(feature = "obs-off"))
}

/// Opens a span named by a string literal; the returned guard closes it on
/// drop. The label is interned once per call site via a hidden `static`, so
/// the steady-state cost is one atomic load plus two ring pushes (and a
/// single branch when recording is disabled).
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static __BT_OBS_LABEL: $crate::LabelId = $crate::LabelId::new($name);
        $crate::SpanGuard::enter(&__BT_OBS_LABEL)
    }};
}

/// Records a request-tagged point event. Two-argument form stamps the
/// telemetry wall clock; the three-argument form takes an explicit
/// nanosecond timestamp (virtual-time serving loops pass their simulated
/// clock so trace phase sums reconcile exactly with their ledgers).
#[macro_export]
macro_rules! trace_mark {
    ($id:expr, $name:expr) => {{
        static __BT_OBS_LABEL: $crate::LabelId = $crate::LabelId::new($name);
        $crate::trace_mark($id, &__BT_OBS_LABEL)
    }};
    ($id:expr, $name:expr, $t_ns:expr) => {{
        static __BT_OBS_LABEL: $crate::LabelId = $crate::LabelId::new($name);
        $crate::trace_mark_at($id, &__BT_OBS_LABEL, $t_ns)
    }};
}

/// Opens a span whose enter and exit events carry a request tag, so the
/// span shows up in that request's reconstructed timeline.
#[macro_export]
macro_rules! trace_span {
    ($id:expr, $name:expr) => {{
        static __BT_OBS_LABEL: $crate::LabelId = $crate::LabelId::new($name);
        $crate::trace_span($id, &__BT_OBS_LABEL)
    }};
}
