//! Request-scoped trace reconstruction.
//!
//! The serving loops tag lifecycle point events with a [`TraceId`] (see
//! [`trace_mark`](fn@crate::trace_mark) /
//! [`trace_mark_at`](crate::trace_mark_at)); after
//! [`drain`](crate::drain), [`reconstruct`] groups the tagged events back
//! into one causal [`RequestTrace`] per request. Phase boundaries are
//! defined so the three durations telescope exactly:
//!
//! ```text
//! queue-wait = first work mark − enqueue
//! compute    = last work mark − first work mark
//! egress     = terminal − last work mark
//! total      = terminal − enqueue = queue-wait + compute + egress
//! ```
//!
//! where "work marks" are `req.round` / `req.prefill.start` /
//! `req.prefill.chunk` / `req.decode.step` / `req.exec.done` and the
//! terminal mark is `req.done` or `req.shed.<reason>`. A request that never
//! left the queue has its whole lifetime attributed to queue-wait.

use crate::names;
use crate::profile::{Profile, SpanEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A per-request tag carried by trace events. The raw value 0 is reserved
/// for "untagged", so request ids map to `id + 1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(u64);

impl TraceId {
    /// The trace id for serving-request index `id` (offset by one so
    /// request 0 stays distinguishable from "untagged").
    pub const fn from_request(id: usize) -> TraceId {
        TraceId(id as u64 + 1)
    }

    /// A trace id from a raw nonzero tag.
    pub const fn from_raw(raw: u64) -> Option<TraceId> {
        if raw == 0 {
            None
        } else {
            Some(TraceId(raw))
        }
    }

    /// The raw tag value stored in ring slots.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The serving-request index this id was built from.
    pub const fn request_id(self) -> usize {
        (self.0 - 1) as usize
    }
}

/// Terminal outcome recovered from a request's trace timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceOutcome {
    /// Timeline ends in `req.done`.
    Done,
    /// Timeline ends in `req.shed.<reason>`; carries the reason label
    /// (e.g. `queue_full`, matching `ShedReason::label()`).
    Shed(String),
    /// No terminal mark drained (request still in flight, or its terminal
    /// event was lost to ring overflow).
    Open,
}

/// One request's reconstructed causal timeline.
#[derive(Clone, Debug)]
pub struct RequestTrace {
    /// The request tag all events share.
    pub id: TraceId,
    /// Events sorted by `(t_ns, seq)`.
    pub events: Vec<SpanEvent>,
}

/// Exact phase breakdown of one request; fields sum to `total_ns`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Enqueue → first work mark (or terminal, if never scheduled).
    pub queue_wait_ns: u64,
    /// First work mark → last work mark.
    pub compute_ns: u64,
    /// Last work mark → terminal (token streaming and completion).
    pub egress_ns: u64,
}

impl PhaseBreakdown {
    /// End-to-end latency: the sum of the three phases.
    pub fn total_ns(&self) -> u64 {
        self.queue_wait_ns + self.compute_ns + self.egress_ns
    }
}

fn is_work_mark(name: &str) -> bool {
    matches!(
        name,
        n if n == names::REQ_ROUND
            || n == names::REQ_PREFILL_START
            || n == names::REQ_PREFILL_CHUNK
            || n == names::REQ_DECODE_STEP
            || n == names::REQ_EXEC_DONE
    )
}

fn is_terminal_mark(name: &str) -> bool {
    name == names::REQ_DONE || name.starts_with(names::REQ_SHED_PREFIX)
}

impl RequestTrace {
    /// Timestamp of the first event named `name`.
    pub fn first_ns(&self, name: &str) -> Option<u64> {
        self.events.iter().find(|e| e.name == name).map(|e| e.t_ns)
    }

    /// Timestamp of the last event named `name`.
    pub fn last_ns(&self, name: &str) -> Option<u64> {
        self.events.iter().rev().find(|e| e.name == name).map(|e| e.t_ns)
    }

    /// The enqueue timestamp (falls back to the first event if the
    /// `req.enqueue` mark was lost).
    pub fn enqueue_ns(&self) -> u64 {
        self.first_ns(names::REQ_ENQUEUE)
            .or_else(|| self.events.first().map(|e| e.t_ns))
            .unwrap_or(0)
    }

    /// The terminal event, if the timeline is closed.
    pub fn terminal(&self) -> Option<&SpanEvent> {
        self.events.iter().rev().find(|e| is_terminal_mark(&e.name))
    }

    /// The recovered outcome.
    pub fn outcome(&self) -> TraceOutcome {
        match self.terminal() {
            None => TraceOutcome::Open,
            Some(e) if e.name == names::REQ_DONE => TraceOutcome::Done,
            Some(e) => TraceOutcome::Shed(e.name[names::REQ_SHED_PREFIX.len()..].to_string()),
        }
    }

    /// End-to-end latency (terminal − enqueue); `None` while open.
    pub fn total_ns(&self) -> Option<u64> {
        self.terminal().map(|t| t.t_ns.saturating_sub(self.enqueue_ns()))
    }

    /// True when the request missed its deadline (shed while queued or
    /// cancelled after admission).
    pub fn deadline_missed(&self) -> bool {
        matches!(
            self.outcome(),
            TraceOutcome::Shed(ref r) if r == "deadline_expired" || r == "cancelled_mid_request"
        )
    }

    /// The exact phase breakdown; `None` while the timeline is open.
    pub fn phases(&self) -> Option<PhaseBreakdown> {
        let t_term = self.terminal()?.t_ns;
        let t_enq = self.enqueue_ns();
        let first_work = self.events.iter().find(|e| is_work_mark(&e.name)).map(|e| e.t_ns);
        let last_work = self.events.iter().rev().find(|e| is_work_mark(&e.name)).map(|e| e.t_ns);
        Some(match first_work {
            None => PhaseBreakdown {
                queue_wait_ns: t_term.saturating_sub(t_enq),
                compute_ns: 0,
                egress_ns: 0,
            },
            Some(fw) => {
                let lw = last_work.unwrap_or(fw).max(fw);
                PhaseBreakdown {
                    queue_wait_ns: fw.saturating_sub(t_enq),
                    compute_ns: lw - fw,
                    egress_ns: t_term.saturating_sub(lw),
                }
            }
        })
    }

    /// Renders the timeline as indented text: a summary line (outcome +
    /// phase breakdown) followed by one line per event with its offset
    /// from enqueue.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let outcome = match self.outcome() {
            TraceOutcome::Done => "done".to_string(),
            TraceOutcome::Shed(r) => format!("shed:{r}"),
            TraceOutcome::Open => "open".to_string(),
        };
        let _ = write!(out, "request #{} — {outcome}", self.id.request_id());
        if let Some(p) = self.phases() {
            let _ = write!(
                out,
                " — total {:.1} us (queue {:.1} + compute {:.1} + egress {:.1})",
                p.total_ns() as f64 / 1e3,
                p.queue_wait_ns as f64 / 1e3,
                p.compute_ns as f64 / 1e3,
                p.egress_ns as f64 / 1e3,
            );
        }
        out.push('\n');
        let t0 = self.enqueue_ns();
        for e in &self.events {
            let _ = writeln!(
                out,
                "  +{:>12.1} us  {}",
                e.t_ns.saturating_sub(t0) as f64 / 1e3,
                e.name
            );
        }
        out
    }
}

/// Groups a drained profile's tagged events into per-request timelines,
/// sorted by trace id. Untagged events are ignored.
pub fn reconstruct(profile: &Profile) -> Vec<RequestTrace> {
    let mut by_tag: BTreeMap<u64, Vec<SpanEvent>> = BTreeMap::new();
    for e in &profile.events {
        if e.trace != 0 {
            by_tag.entry(e.trace).or_default().push(e.clone());
        }
    }
    by_tag
        .into_iter()
        .map(|(tag, mut events)| {
            events.sort_by_key(|e| (e.t_ns, e.seq));
            RequestTrace {
                id: TraceId::from_raw(tag).expect("zero tags filtered above"),
                events,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::EventKind;

    fn mark(name: &str, t_ns: u64, seq: u64, trace: u64) -> SpanEvent {
        SpanEvent {
            name: name.to_string(),
            kind: EventKind::Point,
            t_ns,
            seq,
            thread: 0,
            trace,
        }
    }

    fn profile_of(events: Vec<SpanEvent>) -> Profile {
        Profile {
            events,
            ..Default::default()
        }
    }

    #[test]
    fn served_request_phases_telescope_exactly() {
        let tag = TraceId::from_request(3).raw();
        let p = profile_of(vec![
            mark(names::REQ_ENQUEUE, 100, 0, tag),
            mark(names::REQ_ADMIT, 100, 1, tag),
            mark(names::REQ_ROUND, 400, 2, tag),
            mark(names::REQ_EXEC_DONE, 900, 3, tag),
            mark(names::REQ_STREAM_TOKEN, 950, 4, tag),
            mark(names::REQ_DONE, 1000, 5, tag),
        ]);
        let traces = reconstruct(&p);
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.id.request_id(), 3);
        assert_eq!(t.outcome(), TraceOutcome::Done);
        let ph = t.phases().unwrap();
        assert_eq!(ph.queue_wait_ns, 300);
        assert_eq!(ph.compute_ns, 500);
        assert_eq!(ph.egress_ns, 100);
        assert_eq!(Some(ph.total_ns()), t.total_ns());
    }

    #[test]
    fn shed_without_work_is_pure_queue_wait() {
        let tag = TraceId::from_request(0).raw();
        let p = profile_of(vec![
            mark(names::REQ_ENQUEUE, 50, 0, tag),
            mark(names::REQ_ADMIT, 50, 1, tag),
            mark(names::REQ_SHED_DEADLINE, 450, 2, tag),
        ]);
        let t = &reconstruct(&p)[0];
        assert_eq!(t.outcome(), TraceOutcome::Shed("deadline_expired".into()));
        assert!(t.deadline_missed());
        let ph = t.phases().unwrap();
        assert_eq!(
            ph,
            PhaseBreakdown {
                queue_wait_ns: 400,
                compute_ns: 0,
                egress_ns: 0
            }
        );
    }

    #[test]
    fn reconstruct_splits_interleaved_requests_and_skips_untagged() {
        let a = TraceId::from_request(1).raw();
        let b = TraceId::from_request(2).raw();
        let p = profile_of(vec![
            mark(names::REQ_ENQUEUE, 0, 0, a),
            mark(names::REQ_ENQUEUE, 1, 1, b),
            mark("gemm.grouped.cta", 2, 2, 0),
            mark(names::REQ_DONE, 10, 3, a),
            mark(names::REQ_SHED_QUEUE_FULL, 1, 4, b),
        ]);
        let traces = reconstruct(&p);
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].outcome(), TraceOutcome::Done);
        assert_eq!(traces[1].outcome(), TraceOutcome::Shed("queue_full".into()));
        assert!(traces.iter().all(|t| t.events.iter().all(|e| e.trace != 0)));
    }

    #[test]
    fn open_timeline_reports_open() {
        let tag = TraceId::from_request(9).raw();
        let p = profile_of(vec![mark(names::REQ_ENQUEUE, 5, 0, tag)]);
        let t = &reconstruct(&p)[0];
        assert_eq!(t.outcome(), TraceOutcome::Open);
        assert_eq!(t.phases(), None);
        assert_eq!(t.total_ns(), None);
    }

    #[test]
    fn render_mentions_outcome_and_phases() {
        let tag = TraceId::from_request(5).raw();
        let p = profile_of(vec![
            mark(names::REQ_ENQUEUE, 0, 0, tag),
            mark(names::REQ_ROUND, 100, 1, tag),
            mark(names::REQ_DONE, 300, 2, tag),
        ]);
        let text = reconstruct(&p)[0].render();
        assert!(text.contains("request #5"));
        assert!(text.contains("done"));
        assert!(text.contains("queue"));
        assert!(text.contains(names::REQ_ROUND));
    }
}
