//! Zero-cost mirror of the recording API, active under the `obs-off`
//! feature. Every type and function keeps the live layer's signature so
//! dependents compile unchanged; everything inlines to nothing.

use crate::profile::{HistogramSnapshot, Profile};
use crate::snapshot::HistogramWindow;
use crate::trace::TraceId;

/// A per-call-site span label (no-op build: carries nothing).
pub struct LabelId {
    _name: &'static str,
}

impl LabelId {
    /// A label for `name` (unused in the no-op build).
    pub const fn new(name: &'static str) -> Self {
        LabelId { _name: name }
    }
}

/// RAII span guard (no-op build: zero-sized, `Drop` does nothing).
pub struct SpanGuard {
    _priv: (),
}

impl SpanGuard {
    /// Opens nothing.
    #[inline(always)]
    pub fn enter(_label: &'static LabelId) -> SpanGuard {
        SpanGuard { _priv: () }
    }

    /// An inactive guard.
    #[inline(always)]
    pub fn none() -> SpanGuard {
        SpanGuard { _priv: () }
    }
}

/// Opens nothing (dynamic-name variant).
#[inline(always)]
pub fn span_dyn(_name: &str) -> SpanGuard {
    SpanGuard { _priv: () }
}

/// Always zero in the no-op build (the telemetry clock does not exist).
#[inline(always)]
pub fn now_ns() -> u64 {
    0
}

/// Records nothing.
#[inline(always)]
pub fn trace_mark(_id: TraceId, _label: &'static LabelId) {}

/// Records nothing.
#[inline(always)]
pub fn trace_mark_at(_id: TraceId, _label: &'static LabelId, _t_ns: u64) {}

/// Opens nothing.
#[inline(always)]
pub fn trace_span(_id: TraceId, _label: &'static LabelId) -> SpanGuard {
    SpanGuard { _priv: () }
}

/// A named counter (no-op build: stores nothing, methods inline away).
pub struct Counter {
    _name: &'static str,
}

impl Counter {
    /// A counter named `name` (unused in the no-op build).
    pub const fn new(name: &'static str) -> Self {
        Counter { _name: name }
    }

    /// Does nothing.
    #[inline(always)]
    pub fn add(&'static self, _n: u64) {}

    /// Does nothing.
    #[inline(always)]
    pub fn incr(&'static self) {}

    /// Does nothing.
    #[inline(always)]
    pub fn record_max(&'static self, _v: u64) {}

    /// Always zero.
    #[inline(always)]
    pub fn get(&self) -> u64 {
        0
    }
}

/// Returns a shared inert counter regardless of `name`.
#[inline(always)]
pub fn counter(_name: &str) -> &'static Counter {
    static INERT: Counter = Counter::new("noop");
    &INERT
}

/// Runs `f` untimed.
#[inline(always)]
pub fn timed<R>(_c: &'static Counter, f: impl FnOnce() -> R) -> R {
    f()
}

/// A fixed-bucket histogram (no-op build: stores nothing).
pub struct Histogram {
    _name: &'static str,
}

impl Histogram {
    /// A histogram named `name` (unused in the no-op build).
    pub const fn new(name: &'static str) -> Self {
        Histogram { _name: name }
    }

    /// Does nothing.
    #[inline(always)]
    pub fn record(&'static self, _v: u64) {}

    /// Always empty.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot::default()
    }
}

/// Always false in the no-op build.
#[inline(always)]
pub fn enabled() -> bool {
    false
}

/// Accepted and ignored in the no-op build.
#[inline(always)]
pub fn set_enabled(_on: bool) {}

/// Always returns an empty [`Profile`] in the no-op build.
pub fn drain() -> Profile {
    Profile::default()
}

/// Always empty in the no-op build.
pub fn counter_values() -> Vec<(String, u64)> {
    Vec::new()
}

/// Always empty in the no-op build.
pub fn histogram_windows() -> Vec<HistogramWindow> {
    Vec::new()
}

/// Always empty in the no-op build (nothing registers).
pub fn duplicate_registrations() -> Vec<String> {
    Vec::new()
}

/// Trivially passes in the no-op build.
pub fn assert_unique_registrations() {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_api_accepts_all_calls() {
        let _g = crate::span!("noop.span");
        let _d = span_dyn("noop.dyn");
        let id = TraceId::from_request(3);
        crate::trace_mark!(id, "noop.mark");
        crate::trace_mark!(id, "noop.mark.at", 123);
        let _t = crate::trace_span!(id, "noop.trace.span");
        assert_eq!(now_ns(), 0);
        assert!(counter_values().is_empty());
        assert!(histogram_windows().is_empty());
        assert!(duplicate_registrations().is_empty());
        assert_unique_registrations();
        static C: Counter = Counter::new("noop.counter");
        C.add(7);
        C.incr();
        C.record_max(99);
        assert_eq!(C.get(), 0);
        counter("noop.dynamic").add(3);
        static H: Histogram = Histogram::new("noop.hist");
        H.record(12);
        assert_eq!(H.snapshot().count, 0);
        assert_eq!(timed(&C, || 5), 5);
        set_enabled(true);
        assert!(!enabled());
        let p = drain();
        assert!(p.events.is_empty() && p.counters.is_empty());
        assert!(!crate::compiled());
    }
}
