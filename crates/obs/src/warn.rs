//! `warn_once` — deduplicated diagnostics that tests can capture.
//!
//! Unlike spans and counters this facility is active in **both** build
//! modes and regardless of `BYTE_OBS`: a degraded-configuration warning
//! (e.g. "requested ISA tier unavailable") must never be silently lost.
//! Each key prints to stderr at most once per process; every emission is
//! also appended to an in-memory log that [`warnings`] exposes so tests
//! can assert on diagnostics instead of scraping stderr.

use std::collections::HashSet;
use std::sync::{LazyLock, Mutex};

struct WarnState {
    seen: HashSet<&'static str>,
    log: Vec<(&'static str, String)>,
}

static WARNS: LazyLock<Mutex<WarnState>> = LazyLock::new(|| {
    Mutex::new(WarnState {
        seen: HashSet::new(),
        log: Vec::new(),
    })
});

/// Prints `msg` to stderr and records it, unless `key` has already warned.
/// Returns true when the warning was emitted (first time for this key).
pub fn warn_once(key: &'static str, msg: &str) -> bool {
    let mut state = WARNS.lock().expect("warning log poisoned");
    if !state.seen.insert(key) {
        return false;
    }
    state.log.push((key, msg.to_string()));
    eprintln!("{msg}");
    true
}

/// All warnings emitted so far, as `(key, message)` pairs.
pub fn warnings() -> Vec<(String, String)> {
    WARNS
        .lock()
        .expect("warning log poisoned")
        .log
        .iter()
        .map(|(k, m)| (k.to_string(), m.clone()))
        .collect()
}

/// Clears the deduplication set and log (test isolation only).
pub fn reset_warnings() {
    let mut state = WARNS.lock().expect("warning log poisoned");
    state.seen.clear();
    state.log.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedupes_by_key_and_records() {
        reset_warnings();
        assert!(warn_once("test.key", "first message"));
        assert!(!warn_once("test.key", "second message (suppressed)"));
        assert!(warn_once("test.other", "other key"));
        let log = warnings();
        let for_key: Vec<_> = log.iter().filter(|(k, _)| k == "test.key").collect();
        assert_eq!(for_key.len(), 1);
        assert_eq!(for_key[0].1, "first message");
        assert_eq!(log.len(), 2);
    }
}
