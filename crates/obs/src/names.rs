//! The canonical telemetry name table.
//!
//! Every counter, histogram, and trace-mark name used by the serving stack
//! is declared here once, so `serve.*` / `serve.decode.*` instruments stop
//! accumulating ad-hoc spellings across modules and a single test can
//! assert the namespace is collision-free. Layers register instruments
//! against these constants; [`crate::assert_unique_registrations`] then
//! guarantees no two `static`s share a name at runtime.
//!
//! Naming scheme:
//!
//! | prefix | layer | examples |
//! |---|---|---|
//! | `serve.` | encoder open-loop batcher (`run_open_loop`) | `serve.offered`, `serve.chunk.rounds` |
//! | `serve.shard.` | multi-shard router (`run_sharded_open_loop`) | `serve.shard.routed` |
//! | `serve.decode.` | paged decode loop (`run_decode_loop`) | `serve.decode.steps` |
//! | `serving.` | threaded profiled server (`serve_profiled`) | `serving.batches` |
//! | `kvcache.` | paged KV cache + block pool | `kvcache.pool.high_water_blocks` |
//! | `gemm.` | GEMM drivers (per-ISA/per-precision rates) | `gemm.flops.avx512.f32` |
//! | `req.` | request-lifecycle trace marks (tagged point events) | `req.admit`, `req.shed.queue_full` |
//!
//! High-water counters (`record_max` semantics) contain `high_water` in the
//! name; the snapshot merger relies on that to merge them by max instead of
//! sum.

// --- serve.* — encoder open-loop batcher ----------------------------------

/// Requests offered to the admission gate.
pub const SERVE_OFFERED: &str = "serve.offered";
/// Requests served to completion.
pub const SERVE_SERVED: &str = "serve.served";
/// Requests shed: bounded queue was full at arrival.
pub const SERVE_SHED_QUEUE_FULL: &str = "serve.shed.queue_full";
/// Requests shed: deadline expired while queued.
pub const SERVE_SHED_DEADLINE: &str = "serve.shed.deadline_expired";
/// Requests shed: longer than the configured max length.
pub const SERVE_SHED_TOO_LONG: &str = "serve.shed.too_long";
/// Requests shed: KV-cache allocation failed.
pub const SERVE_SHED_CACHE_OOM: &str = "serve.shed.cache_oom";
/// Requests shed: cancelled between chunk rounds after admission.
pub const SERVE_SHED_CANCELLED: &str = "serve.shed.cancelled_mid_request";
/// Requests shed: the shard router refused to route onto a hot shard.
pub const SERVE_SHED_HOT_SHARD: &str = "serve.shed.hot_shard";
/// Batches cut from the queue.
pub const SERVE_BATCHES: &str = "serve.batches";
/// Chunk rounds executed (a whole-batch cut counts one round).
pub const SERVE_CHUNK_ROUNDS: &str = "serve.chunk.rounds";
/// Requests cancelled between rounds (same events as
/// [`SERVE_SHED_CANCELLED`], kept for the chunk-level view).
pub const SERVE_CHUNK_CANCELLED: &str = "serve.chunk.cancelled";
/// Histogram: valid tokens per chunk round.
pub const SERVE_CHUNK_TOKENS: &str = "serve.chunk.tokens";
/// Histogram: queue depth sampled at each batch cut.
pub const SERVE_QUEUE_DEPTH: &str = "serve.queue.depth";
/// Histogram: requests per cut batch.
pub const SERVE_BATCH_OCCUPANCY: &str = "serve.batch.occupancy";
/// Histogram: valid tokens per cut batch.
pub const SERVE_BATCH_TOKENS: &str = "serve.batch.tokens";
/// Histogram: per-request queue wait in microseconds.
pub const SERVE_QUEUE_WAIT_US: &str = "serve.queue_wait_us";
/// Histogram: per-request end-to-end served latency in microseconds.
pub const SERVE_LATENCY_US: &str = "serve.latency_us";

// --- serve.shard.* — multi-shard router ------------------------------------

/// Requests the shard router dispatched onto a shard.
pub const SERVE_SHARD_ROUTED: &str = "serve.shard.routed";
/// Requests the router shed instead of routing onto a hot shard (same
/// events as [`SERVE_SHED_HOT_SHARD`], kept for the shard-level view).
pub const SERVE_SHARD_SHED_HOT: &str = "serve.shard.shed.hot_shard";
/// Histogram: outstanding valid tokens on the chosen shard, sampled at
/// every routing decision.
pub const SERVE_SHARD_OUTSTANDING: &str = "serve.shard.outstanding_tokens";

// --- serve.decode.* — paged decode loop -----------------------------------

/// Generation requests offered to the decode loop.
pub const DECODE_OFFERED: &str = "serve.decode.offered";
/// Generation requests served to completion.
pub const DECODE_SERVED: &str = "serve.decode.served";
/// Generation requests shed (all reasons).
pub const DECODE_SHED: &str = "serve.decode.shed";
/// Generation requests shed on KV-pool exhaustion.
pub const DECODE_SHED_CACHE_OOM: &str = "serve.decode.shed.cache_oom";
/// Generation requests cancelled mid-flight on deadline.
pub const DECODE_SHED_CANCELLED: &str = "serve.decode.shed.cancelled_mid_request";
/// Prefill chunks ingested.
pub const DECODE_PREFILL_CHUNKS: &str = "serve.decode.prefill.chunks";
/// Token steps executed.
pub const DECODE_STEPS: &str = "serve.decode.steps";
/// Decode tokens generated.
pub const DECODE_TOKENS_DECODE: &str = "serve.decode.tokens.decode";
/// Prompt tokens ingested.
pub const DECODE_TOKENS_PREFILL: &str = "serve.decode.tokens.prefill";
/// Histogram: active decode sessions per step.
pub const DECODE_ACTIVE_SESSIONS: &str = "serve.decode.active_sessions";

// --- serving.* — threaded profiled server ---------------------------------

/// Histogram: requests per forwarded batch.
pub const SERVING_BATCH_OCCUPANCY: &str = "serving.batch.occupancy";
/// Histogram: per-request queue wait in microseconds.
pub const SERVING_QUEUE_WAIT_US: &str = "serving.queue_wait_us";
/// Requests accepted by the profiled server.
pub const SERVING_REQUESTS: &str = "serving.requests";
/// Batches forwarded by the profiled server.
pub const SERVING_BATCHES: &str = "serving.batches";
/// Requests that returned an error outcome.
pub const SERVING_REQUEST_ERRORS: &str = "serving.request.errors";

// --- kvcache.* — paged KV cache and block pool ----------------------------

/// Decode sessions opened against the paged cache.
pub const KV_SESSIONS_OPENED: &str = "kvcache.sessions.opened";
/// Decode sessions freed.
pub const KV_SESSIONS_FREED: &str = "kvcache.sessions.freed";
/// Allocation refusals at the cache layer.
pub const KV_OOM: &str = "kvcache.oom";
/// K/V token rows appended.
pub const KV_TOKENS_APPENDED: &str = "kvcache.tokens.appended";
/// Histogram: blocks in use sampled per decode step.
pub const KV_BLOCKS_IN_USE: &str = "kvcache.blocks.in_use";
/// High-water mark of blocks ever in use (block-pool layer; merges by max).
pub const KV_POOL_HIGH_WATER: &str = "kvcache.pool.high_water_blocks";
/// Block-pool allocation refusals.
pub const KV_POOL_OOM_EVENTS: &str = "kvcache.pool.oom_events";

// --- gemm.* — per-ISA / per-precision dispatch rates ----------------------

/// Prefix for per-dispatch-path call counters: `gemm.calls.<isa>.<prec>`.
pub const GEMM_CALLS_PREFIX: &str = "gemm.calls.";
/// Prefix for per-dispatch-path FLOP counters: `gemm.flops.<isa>.<prec>`.
/// The windowed snapshot divides the delta by the window to report GFLOP/s
/// per dispatch path.
pub const GEMM_FLOPS_PREFIX: &str = "gemm.flops.";

// --- req.* — request-lifecycle trace marks --------------------------------
//
// These are tagged point events, not counters: each carries a `TraceId` and
// a timestamp, and `crate::trace::reconstruct` groups them into
// per-request timelines. The phase boundaries are defined so the three
// phase durations telescope exactly to end-to-end latency:
// queue-wait = first work mark − enqueue; compute = last work mark − first
// work mark; egress = terminal − last work mark.

/// Request entered the system (arrival at the admission gate).
pub const REQ_ENQUEUE: &str = "req.enqueue";
/// Request admitted into the bounded queue.
pub const REQ_ADMIT: &str = "req.admit";
/// Request's chunk round began executing (first one ends queue-wait).
pub const REQ_ROUND: &str = "req.round";
/// Request's forward work finished (last one starts stream egress).
pub const REQ_EXEC_DONE: &str = "req.exec.done";
/// Request left the decode queue into prefilling (ends queue-wait).
pub const REQ_PREFILL_START: &str = "req.prefill.start";
/// One prompt chunk ingested into the paged cache.
pub const REQ_PREFILL_CHUNK: &str = "req.prefill.chunk";
/// One decode token generated.
pub const REQ_DECODE_STEP: &str = "req.decode.step";
/// One token pushed to the client stream.
pub const REQ_STREAM_TOKEN: &str = "req.stream.token";
/// Terminal mark: request served to completion.
pub const REQ_DONE: &str = "req.done";
/// Prefix shared by all terminal shed marks; the suffix is the
/// `ShedReason` label.
pub const REQ_SHED_PREFIX: &str = "req.shed.";
/// Terminal mark: shed, queue full.
pub const REQ_SHED_QUEUE_FULL: &str = "req.shed.queue_full";
/// Terminal mark: shed, deadline expired in queue.
pub const REQ_SHED_DEADLINE: &str = "req.shed.deadline_expired";
/// Terminal mark: shed, over the max length.
pub const REQ_SHED_TOO_LONG: &str = "req.shed.too_long";
/// Terminal mark: shed, KV-cache exhaustion.
pub const REQ_SHED_CACHE_OOM: &str = "req.shed.cache_oom";
/// Terminal mark: shed, cancelled after admission.
pub const REQ_SHED_CANCELLED: &str = "req.shed.cancelled_mid_request";
/// Terminal mark: shed, router refused a hot shard.
pub const REQ_SHED_HOT_SHARD: &str = "req.shed.hot_shard";

/// Every fixed name in the table (prefixes excluded), for the uniqueness
/// test and documentation tooling.
pub const ALL: &[&str] = &[
    SERVE_OFFERED,
    SERVE_SERVED,
    SERVE_SHED_QUEUE_FULL,
    SERVE_SHED_DEADLINE,
    SERVE_SHED_TOO_LONG,
    SERVE_SHED_CACHE_OOM,
    SERVE_SHED_CANCELLED,
    SERVE_SHED_HOT_SHARD,
    SERVE_BATCHES,
    SERVE_CHUNK_ROUNDS,
    SERVE_CHUNK_CANCELLED,
    SERVE_CHUNK_TOKENS,
    SERVE_QUEUE_DEPTH,
    SERVE_BATCH_OCCUPANCY,
    SERVE_BATCH_TOKENS,
    SERVE_QUEUE_WAIT_US,
    SERVE_LATENCY_US,
    SERVE_SHARD_ROUTED,
    SERVE_SHARD_SHED_HOT,
    SERVE_SHARD_OUTSTANDING,
    DECODE_OFFERED,
    DECODE_SERVED,
    DECODE_SHED,
    DECODE_SHED_CACHE_OOM,
    DECODE_SHED_CANCELLED,
    DECODE_PREFILL_CHUNKS,
    DECODE_STEPS,
    DECODE_TOKENS_DECODE,
    DECODE_TOKENS_PREFILL,
    DECODE_ACTIVE_SESSIONS,
    SERVING_BATCH_OCCUPANCY,
    SERVING_QUEUE_WAIT_US,
    SERVING_REQUESTS,
    SERVING_BATCHES,
    SERVING_REQUEST_ERRORS,
    KV_SESSIONS_OPENED,
    KV_SESSIONS_FREED,
    KV_OOM,
    KV_TOKENS_APPENDED,
    KV_BLOCKS_IN_USE,
    KV_POOL_HIGH_WATER,
    KV_POOL_OOM_EVENTS,
    REQ_ENQUEUE,
    REQ_ADMIT,
    REQ_ROUND,
    REQ_EXEC_DONE,
    REQ_PREFILL_START,
    REQ_PREFILL_CHUNK,
    REQ_DECODE_STEP,
    REQ_STREAM_TOKEN,
    REQ_DONE,
    REQ_SHED_QUEUE_FULL,
    REQ_SHED_DEADLINE,
    REQ_SHED_TOO_LONG,
    REQ_SHED_CACHE_OOM,
    REQ_SHED_CANCELLED,
    REQ_SHED_HOT_SHARD,
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn table_has_no_duplicate_names() {
        let mut seen = HashSet::new();
        for name in ALL {
            assert!(seen.insert(name), "duplicate name in obs::names::ALL: {name}");
        }
    }

    #[test]
    fn shed_marks_follow_the_prefix() {
        for name in [
            REQ_SHED_QUEUE_FULL,
            REQ_SHED_DEADLINE,
            REQ_SHED_TOO_LONG,
            REQ_SHED_CACHE_OOM,
            REQ_SHED_CANCELLED,
            REQ_SHED_HOT_SHARD,
        ] {
            assert!(name.starts_with(REQ_SHED_PREFIX));
        }
    }

    #[test]
    fn high_water_names_merge_by_max() {
        assert!(KV_POOL_HIGH_WATER.contains("high_water"));
    }
}
