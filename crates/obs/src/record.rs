//! The live recording layer: thread-local span rings, label interning,
//! counter/histogram registries, and the drain that merges everything into
//! a [`Profile`].
//!
//! Concurrency model: each ring is single-producer (its owning thread)
//! single-consumer (the drainer, serialized by a global lock). The writer
//! publishes slots with a `Release` store of `head`; the drainer `Acquire`-
//! loads `head`, reads the slots behind it, and advances `tail`. A full
//! ring drops new events (counted) rather than blocking or overwriting.

use crate::profile::{EventKind, HistogramSnapshot, Profile, SpanEvent};
use crate::snapshot::{bucket_of, HistogramWindow, HIST_BUCKETS};
use crate::trace::TraceId;
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{LazyLock, Mutex, OnceLock};
use std::time::Instant;

/// Slots per thread-local ring (power of two; ~2 MiB per thread).
const RING_CAP: usize = 1 << 14;

// Event kind lives in the low two bits of `Slot::packed`.
const KIND_ENTER: u64 = 0;
const KIND_EXIT: u64 = 1;
const KIND_POINT: u64 = 2;
const KIND_MASK: u64 = 3;

// ---------------------------------------------------------------------------
// enable switch
// ---------------------------------------------------------------------------

const EN_UNINIT: u8 = 0;
const EN_ON: u8 = 1;
const EN_OFF: u8 = 2;

static ENABLED: AtomicU8 = AtomicU8::new(EN_UNINIT);

/// True when recording is active. First call reads `BYTE_OBS` (values
/// `0`/`off`/`false`/`no` disable recording; anything else — including
/// unset — enables it).
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        EN_ON => true,
        EN_OFF => false,
        _ => init_enabled(),
    }
}

#[cold]
fn init_enabled() -> bool {
    let on = match std::env::var("BYTE_OBS") {
        Ok(v) => !matches!(v.to_ascii_lowercase().as_str(), "0" | "off" | "false" | "no"),
        Err(_) => true,
    };
    let want = if on { EN_ON } else { EN_OFF };
    // Racing initializers agree (same env), and set_enabled may win — reread.
    let _ = ENABLED.compare_exchange(EN_UNINIT, want, Ordering::Relaxed, Ordering::Relaxed);
    ENABLED.load(Ordering::Relaxed) == EN_ON
}

/// Programmatically force recording on or off, overriding `BYTE_OBS`.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { EN_ON } else { EN_OFF }, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// clock + sequence
// ---------------------------------------------------------------------------

static SEQ: AtomicU64 = AtomicU64::new(0);

fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide telemetry epoch. Exposed so callers
/// that mix wall-clock spans with explicit-timestamp trace marks (see
/// [`trace_mark_at`]) can stamp both from the same clock.
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------------
// label interning
// ---------------------------------------------------------------------------

#[derive(Default)]
struct LabelTable {
    /// Index `id - 1` → name (id 0 means "unset / span inactive").
    names: Vec<&'static str>,
    by_name: HashMap<&'static str, u32>,
}

static LABELS: LazyLock<Mutex<LabelTable>> = LazyLock::new(Default::default);

fn intern(name: &str) -> u32 {
    let mut t = LABELS.lock().expect("label table poisoned");
    if let Some(&id) = t.by_name.get(name) {
        return id;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    let id = (t.names.len() + 1) as u32;
    t.names.push(leaked);
    t.by_name.insert(leaked, id);
    id
}

fn label_names() -> Vec<&'static str> {
    LABELS.lock().expect("label table poisoned").names.clone()
}

/// A per-call-site span label, interned on first use. Declared by the
/// [`span!`](crate::span!) macro; user code rarely constructs one directly.
pub struct LabelId {
    name: &'static str,
    id: AtomicU32,
}

impl LabelId {
    /// A label for `name`, not yet interned.
    pub const fn new(name: &'static str) -> Self {
        LabelId {
            name,
            id: AtomicU32::new(0),
        }
    }

    fn resolve(&self) -> u32 {
        let id = self.id.load(Ordering::Relaxed);
        if id != 0 {
            return id;
        }
        let id = intern(self.name);
        self.id.store(id, Ordering::Relaxed);
        id
    }
}

// ---------------------------------------------------------------------------
// thread-local rings
// ---------------------------------------------------------------------------

struct Slot {
    /// `label_id << 2 | kind`.
    packed: AtomicU64,
    t_ns: AtomicU64,
    seq: AtomicU64,
    /// Request tag (raw [`TraceId`]); 0 = untagged process-wide event.
    tag: AtomicU64,
}

struct Ring {
    slots: Vec<Slot>,
    /// Writer cursor (monotonic, not wrapped); published with `Release`.
    head: AtomicUsize,
    /// Reader cursor; only advanced under the drain lock.
    tail: AtomicUsize,
    dropped: AtomicU64,
    thread: usize,
    name: String,
}

impl Ring {
    fn push(&self, kind: u64, label: u32, tag: u64, t_ns: u64) {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        if head - tail >= RING_CAP {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let slot = &self.slots[head & (RING_CAP - 1)];
        slot.packed.store((label as u64) << 2 | kind, Ordering::Relaxed);
        slot.t_ns.store(t_ns, Ordering::Relaxed);
        slot.seq.store(SEQ.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
        slot.tag.store(tag, Ordering::Relaxed);
        self.head.store(head + 1, Ordering::Release);
    }
}

static RINGS: Mutex<Vec<&'static Ring>> = Mutex::new(Vec::new());

thread_local! {
    static MY_RING: Cell<Option<&'static Ring>> = const { Cell::new(None) };
}

#[cold]
fn make_ring() -> &'static Ring {
    let mut rings = RINGS.lock().expect("ring registry poisoned");
    let thread = rings.len();
    let name = std::thread::current()
        .name()
        .map(|n| n.to_string())
        .unwrap_or_else(|| format!("thread-{thread}"));
    let ring: &'static Ring = Box::leak(Box::new(Ring {
        slots: (0..RING_CAP)
            .map(|_| Slot {
                packed: AtomicU64::new(0),
                t_ns: AtomicU64::new(0),
                seq: AtomicU64::new(0),
                tag: AtomicU64::new(0),
            })
            .collect(),
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        dropped: AtomicU64::new(0),
        thread,
        name,
    }));
    rings.push(ring);
    ring
}

#[inline]
fn push_tagged(kind: u64, label: u32, tag: u64, t_ns: u64) {
    MY_RING.with(|cell| {
        let ring = match cell.get() {
            Some(r) => r,
            None => {
                let r = make_ring();
                cell.set(Some(r));
                r
            }
        };
        ring.push(kind, label, tag, t_ns);
    });
}

#[inline]
fn push_event(kind: u64, label: u32) {
    push_tagged(kind, label, 0, now_ns());
}

// ---------------------------------------------------------------------------
// spans
// ---------------------------------------------------------------------------

/// RAII guard for an open span; `Drop` records the exit event.
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard {
    /// Interned label, or 0 when the span is inactive (recording disabled).
    id: u32,
    /// Request tag carried onto both events (0 = untagged).
    tag: u64,
}

impl SpanGuard {
    /// Opens a span for an interned label (the `span!` macro's entry point).
    #[inline]
    pub fn enter(label: &'static LabelId) -> SpanGuard {
        if !enabled() {
            return SpanGuard { id: 0, tag: 0 };
        }
        let id = label.resolve();
        push_event(KIND_ENTER, id);
        SpanGuard { id, tag: 0 }
    }

    /// An inactive guard, for conditional instrumentation.
    #[inline]
    pub fn none() -> SpanGuard {
        SpanGuard { id: 0, tag: 0 }
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if self.id != 0 {
            push_tagged(KIND_EXIT, self.id, self.tag, now_ns());
        }
    }
}

/// Opens a span with a runtime-computed name (interned via a global table;
/// costlier than `span!`, intended for per-kernel names on traced devices).
pub fn span_dyn(name: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { id: 0, tag: 0 };
    }
    let id = intern(name);
    push_event(KIND_ENTER, id);
    SpanGuard { id, tag: 0 }
}

// ---------------------------------------------------------------------------
// request-scoped trace events
// ---------------------------------------------------------------------------

/// Records a point event tagged with `id` at the current wall clock. Point
/// events mark request-lifecycle transitions (enqueue, admit, shed, round,
/// token, done); [`crate::trace::reconstruct`] groups them back into
/// per-request timelines after [`drain`].
#[inline]
pub fn trace_mark(id: TraceId, label: &'static LabelId) {
    if enabled() {
        push_tagged(KIND_POINT, label.resolve(), id.raw(), now_ns());
    }
}

/// Records a point event tagged with `id` at an explicit timestamp.
///
/// Virtual-time serving loops (`run_open_loop`, `run_decode_loop`) pass
/// their simulated clock (in nanoseconds) here so that per-phase durations
/// reconstructed from the trace match the loop's own ledger *exactly*;
/// mixing these with wall-clock events in one profile is fine because trace
/// reconstruction only compares timestamps within a single request.
#[inline]
pub fn trace_mark_at(id: TraceId, label: &'static LabelId, t_ns: u64) {
    if enabled() {
        push_tagged(KIND_POINT, label.resolve(), id.raw(), t_ns);
    }
}

/// Opens a span whose enter/exit events both carry the request tag `id`.
#[inline]
pub fn trace_span(id: TraceId, label: &'static LabelId) -> SpanGuard {
    if !enabled() {
        return SpanGuard { id: 0, tag: 0 };
    }
    let lid = label.resolve();
    let tag = id.raw();
    push_tagged(KIND_ENTER, lid, tag, now_ns());
    SpanGuard { id: lid, tag }
}

// ---------------------------------------------------------------------------
// counters
// ---------------------------------------------------------------------------

/// A named monotonic counter, bumped with relaxed atomics. Declare as a
/// `static`; it self-registers into the global registry on first touch.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

static COUNTERS: Mutex<Vec<&'static Counter>> = Mutex::new(Vec::new());

impl Counter {
    /// A counter named `name`, initially zero and unregistered.
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    #[cold]
    fn register(&'static self) {
        COUNTERS.lock().expect("counter registry poisoned").push(self);
    }

    #[inline]
    fn touch(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            self.register();
        }
    }

    /// Adds `n` (no-op while recording is disabled).
    #[inline]
    pub fn add(&'static self, n: u64) {
        if enabled() {
            self.touch();
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn incr(&'static self) {
        self.add(1);
    }

    /// Raises the counter to `v` if `v` is larger (high-water marks).
    #[inline]
    pub fn record_max(&'static self, v: u64) {
        if enabled() {
            self.touch();
            self.value.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Interns a runtime-named counter (e.g. per-worker lanes). The counter is
/// registered at creation and lives forever.
pub fn counter(name: &str) -> &'static Counter {
    static DYN: Mutex<Option<HashMap<&'static str, &'static Counter>>> = Mutex::new(None);
    let mut map = DYN.lock().expect("dynamic counter registry poisoned");
    let map = map.get_or_insert_with(HashMap::new);
    if let Some(&c) = map.get(name) {
        return c;
    }
    let leaked_name: &'static str = Box::leak(name.to_string().into_boxed_str());
    let c: &'static Counter = Box::leak(Box::new(Counter::new(leaked_name)));
    c.registered.store(true, Ordering::Relaxed);
    COUNTERS.lock().expect("counter registry poisoned").push(c);
    map.insert(leaked_name, c);
    c
}

/// Times `f` and accumulates the elapsed nanoseconds into `c`. Used where
/// per-iteration spans would flood the rings (GEMM pack/compute phases).
#[inline]
pub fn timed<R>(c: &'static Counter, f: impl FnOnce() -> R) -> R {
    if enabled() {
        let start = Instant::now();
        let out = f();
        c.add(start.elapsed().as_nanos() as u64);
        out
    } else {
        f()
    }
}

// ---------------------------------------------------------------------------
// histograms
// ---------------------------------------------------------------------------

/// A fixed-bucket atomic histogram: values below 256 are recorded exactly,
/// larger values land in per-power-of-two buckets (percentiles then report
/// the bucket's upper bound). Bucket geometry lives in [`crate::snapshot`]
/// so windowed aggregation reproduces the exact same percentile math.
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    registered: AtomicBool,
}

static HISTOGRAMS: Mutex<Vec<&'static Histogram>> = Mutex::new(Vec::new());

impl Histogram {
    /// A histogram named `name`, initially empty and unregistered.
    pub const fn new(name: &'static str) -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            name,
            buckets: [ZERO; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Records one observation (no-op while recording is disabled).
    #[inline]
    pub fn record(&'static self, v: u64) {
        if enabled() {
            if !self.registered.swap(true, Ordering::Relaxed) {
                HISTOGRAMS.lock().expect("histogram registry poisoned").push(self);
            }
            self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// The raw cumulative bucket state, for windowed aggregation.
    pub fn window(&self) -> HistogramWindow {
        HistogramWindow {
            name: self.name.to_string(),
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    /// A point-in-time snapshot with p50/p95/p99.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.window().snapshot()
    }
}

// ---------------------------------------------------------------------------
// drain
// ---------------------------------------------------------------------------

/// Drains every thread-local ring into a merged, time-ordered [`Profile`]
/// and snapshots all registered counters and histograms (counter values are
/// cumulative — draining does not reset them; ring events are consumed).
pub fn drain() -> Profile {
    static DRAIN_LOCK: Mutex<()> = Mutex::new(());
    let _guard = DRAIN_LOCK.lock().expect("drain lock poisoned");

    let names = label_names();
    let rings: Vec<&'static Ring> = RINGS.lock().expect("ring registry poisoned").clone();

    let mut events = Vec::new();
    let mut dropped = 0u64;
    let mut threads = Vec::new();
    for ring in &rings {
        threads.push(ring.name.clone());
        let head = ring.head.load(Ordering::Acquire);
        let tail = ring.tail.load(Ordering::Relaxed);
        for i in tail..head {
            let slot = &ring.slots[i & (RING_CAP - 1)];
            let packed = slot.packed.load(Ordering::Relaxed);
            let label = (packed >> 2) as usize;
            let name = names
                .get(label.wrapping_sub(1))
                .map(|n| n.to_string())
                .unwrap_or_else(|| format!("label-{label}"));
            events.push(SpanEvent {
                name,
                kind: match packed & KIND_MASK {
                    KIND_ENTER => EventKind::Enter,
                    KIND_EXIT => EventKind::Exit,
                    _ => EventKind::Point,
                },
                t_ns: slot.t_ns.load(Ordering::Relaxed),
                seq: slot.seq.load(Ordering::Relaxed),
                thread: ring.thread,
                trace: slot.tag.load(Ordering::Relaxed),
            });
        }
        ring.tail.store(head, Ordering::Relaxed);
        dropped += ring.dropped.swap(0, Ordering::Relaxed);
    }
    events.sort_by_key(|e| (e.t_ns, e.seq));

    let counters = counter_values();
    let histograms: Vec<HistogramSnapshot> = {
        let regs = HISTOGRAMS.lock().expect("histogram registry poisoned");
        let mut v: Vec<HistogramSnapshot> = regs.iter().map(|h| h.snapshot()).collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    };

    Profile {
        events,
        counters,
        histograms,
        dropped,
        threads,
    }
}

// ---------------------------------------------------------------------------
// registry access for windowed aggregation
// ---------------------------------------------------------------------------

/// Current `(name, cumulative value)` of every registered counter, sorted by
/// name. Unlike [`drain`] this consumes nothing; the windowed
/// [`crate::snapshot::Aggregator`] diffs successive reads.
pub fn counter_values() -> Vec<(String, u64)> {
    let regs = COUNTERS.lock().expect("counter registry poisoned");
    let mut v: Vec<(String, u64)> = regs.iter().map(|c| (c.name.to_string(), c.get())).collect();
    v.sort();
    v
}

/// Current cumulative bucket state of every registered histogram, sorted by
/// name. Non-consuming, for the windowed aggregator.
pub fn histogram_windows() -> Vec<HistogramWindow> {
    let regs = HISTOGRAMS.lock().expect("histogram registry poisoned");
    let mut v: Vec<HistogramWindow> = regs.iter().map(|h| h.window()).collect();
    v.sort_by(|a, b| a.name.cmp(&b.name));
    v
}

/// Names registered more than once across the counter and histogram
/// registries. Two distinct `static`s sharing one name would silently split
/// a metric across instruments; [`assert_unique_registrations`] turns that
/// into a hard failure.
pub fn duplicate_registrations() -> Vec<String> {
    let mut seen: HashMap<String, usize> = HashMap::new();
    for (name, _) in counter_values() {
        *seen.entry(name).or_insert(0) += 1;
    }
    for h in histogram_windows() {
        *seen.entry(h.name).or_insert(0) += 1;
    }
    let mut dupes: Vec<String> = seen.into_iter().filter(|&(_, n)| n > 1).map(|(n, _)| n).collect();
    dupes.sort();
    dupes
}

/// Panics if any counter or histogram name is registered by more than one
/// instrument. Called by the telemetry test suite after exercising the
/// serving paths.
pub fn assert_unique_registrations() {
    let dupes = duplicate_registrations();
    assert!(dupes.is_empty(), "duplicate telemetry registrations: {dupes:?}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::bucket_upper;
    use std::sync::MutexGuard;

    /// Drain-based tests share global state; serialize them.
    fn lock() -> MutexGuard<'static, ()> {
        static TEST_LOCK: Mutex<()> = Mutex::new(());
        let guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        let _ = drain(); // discard events from earlier tests
        guard
    }

    #[test]
    fn span_macro_records_matched_pair() {
        let _l = lock();
        {
            let _s = crate::span!("test.outer");
            let _inner = crate::span!("test.inner");
        }
        let p = drain();
        let names: Vec<(&str, EventKind)> = p.events.iter().map(|e| (e.name.as_str(), e.kind)).collect();
        assert!(names.contains(&("test.outer", EventKind::Enter)));
        assert!(names.contains(&("test.inner", EventKind::Enter)));
        assert!(names.contains(&("test.inner", EventKind::Exit)));
        assert!(names.contains(&("test.outer", EventKind::Exit)));
        let totals = p.span_totals();
        assert_eq!(totals["test.outer"].0, 1);
    }

    #[test]
    fn events_are_time_ordered_and_sequenced() {
        let _l = lock();
        for _ in 0..10 {
            let _s = crate::span!("test.order");
        }
        let p = drain();
        let evs: Vec<&SpanEvent> = p.events.iter().filter(|e| e.name == "test.order").collect();
        assert_eq!(evs.len(), 20);
        for w in evs.windows(2) {
            assert!((w[0].t_ns, w[0].seq) <= (w[1].t_ns, w[1].seq));
        }
    }

    #[test]
    fn disabled_recording_is_invisible() {
        let _l = lock();
        set_enabled(false);
        {
            let _s = crate::span!("test.disabled");
            static C: Counter = Counter::new("test.disabled.counter");
            C.incr();
            assert_eq!(C.get(), 0);
        }
        set_enabled(true);
        let p = drain();
        assert!(p.events.iter().all(|e| e.name != "test.disabled"));
    }

    #[test]
    fn counters_register_and_accumulate() {
        let _l = lock();
        static C: Counter = Counter::new("test.counter.acc");
        let before = C.get();
        C.add(5);
        C.incr();
        assert_eq!(C.get(), before + 6);
        let p = drain();
        assert!(p.counters.iter().any(|(n, v)| n == "test.counter.acc" && *v >= 6));
    }

    #[test]
    fn dynamic_counters_intern_to_one_instance() {
        let _l = lock();
        let a = counter("test.dyn.lane0");
        let b = counter("test.dyn.lane0");
        assert!(std::ptr::eq(a, b));
        let before = a.get();
        a.add(3);
        assert_eq!(b.get(), before + 3);
    }

    #[test]
    fn record_max_is_high_water() {
        let _l = lock();
        static HWM: Counter = Counter::new("test.hwm");
        HWM.record_max(10);
        HWM.record_max(4);
        HWM.record_max(12);
        assert_eq!(HWM.get(), 12);
    }

    #[test]
    fn timed_accumulates_nanos() {
        let _l = lock();
        static T: Counter = Counter::new("test.timed.ns");
        let before = T.get();
        let out = timed(&T, || {
            std::thread::sleep(std::time::Duration::from_millis(1));
            7
        });
        assert_eq!(out, 7);
        assert!(T.get() - before >= 500_000, "timed() should record >= 0.5ms");
    }

    #[test]
    fn histogram_percentiles_exact_in_linear_range() {
        let _l = lock();
        static H: Histogram = Histogram::new("test.hist.linear");
        for v in 1..=100u64 {
            H.record(v);
        }
        let s = H.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        assert_eq!(s.p50, 50);
        assert_eq!(s.p95, 95);
        assert_eq!(s.p99, 99);
    }

    #[test]
    fn histogram_log_range_reports_upper_bound() {
        let _l = lock();
        static H: Histogram = Histogram::new("test.hist.log");
        H.record(1000); // bucket [512, 1024) -> upper 1023
        let s = H.snapshot();
        assert_eq!(s.p50, 1023);
        assert!(s.p99 >= 1000);
    }

    #[test]
    fn ring_overflow_drops_and_counts() {
        let _l = lock();
        // Fill well past capacity without draining.
        for _ in 0..(RING_CAP) {
            let _s = crate::span!("test.flood");
        }
        let p = drain();
        assert!(p.dropped > 0, "flooding one ring must report drops");
        // Drop counter resets after drain.
        let p2 = drain();
        assert_eq!(p2.dropped, 0);
    }

    #[test]
    fn cross_thread_events_carry_thread_ids() {
        let _l = lock();
        std::thread::spawn(|| {
            let _s = crate::span!("test.cross_thread");
        })
        .join()
        .unwrap();
        let _s = crate::span!("test.main_thread");
        drop(_s);
        let p = drain();
        let t_a = p
            .events
            .iter()
            .find(|e| e.name == "test.cross_thread")
            .map(|e| e.thread);
        let t_b = p.events.iter().find(|e| e.name == "test.main_thread").map(|e| e.thread);
        assert!(t_a.is_some() && t_b.is_some());
        assert_ne!(t_a, t_b);
        assert!(p.threads.len() >= 2);
    }

    #[test]
    fn bucket_math_is_monotonic() {
        let mut last = 0;
        for v in [0u64, 1, 255, 256, 511, 512, 1 << 20, 1 << 40, u64::MAX] {
            let b = bucket_of(v);
            assert!(b >= last);
            assert!(b < HIST_BUCKETS);
            assert!(bucket_upper(b) >= v, "upper bound must cover {v}");
            last = b;
        }
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn trace_marks_carry_tags_and_explicit_timestamps() {
        let _l = lock();
        let id = TraceId::from_request(7);
        crate::trace_mark!(id, "test.trace.enq", 1_000);
        crate::trace_mark!(id, "test.trace.done", 5_000);
        {
            let _s = crate::trace_span!(id, "test.trace.span");
        }
        let _untagged = crate::span!("test.trace.untagged");
        let p = drain();
        let tagged: Vec<&SpanEvent> = p.events.iter().filter(|e| e.trace == id.raw()).collect();
        assert_eq!(tagged.len(), 4, "two marks + span enter/exit");
        let enq = tagged.iter().find(|e| e.name == "test.trace.enq").unwrap();
        assert_eq!((enq.kind, enq.t_ns), (EventKind::Point, 1_000));
        let done = tagged.iter().find(|e| e.name == "test.trace.done").unwrap();
        assert_eq!(done.t_ns, 5_000);
        assert!(tagged
            .iter()
            .any(|e| e.name == "test.trace.span" && e.kind == EventKind::Enter));
        assert!(tagged
            .iter()
            .any(|e| e.name == "test.trace.span" && e.kind == EventKind::Exit));
        let untagged = p.events.iter().find(|e| e.name == "test.trace.untagged").unwrap();
        assert_eq!(untagged.trace, 0);
    }

    #[test]
    fn counter_values_and_histogram_windows_are_nonconsuming() {
        let _l = lock();
        static C: Counter = Counter::new("test.windowed.counter");
        static H: Histogram = Histogram::new("test.windowed.hist");
        C.add(4);
        H.record(10);
        let find = || {
            counter_values()
                .into_iter()
                .find(|(n, _)| n == "test.windowed.counter")
                .map(|(_, v)| v)
        };
        let first = find().expect("registered");
        assert_eq!(find(), Some(first), "reading twice must not consume");
        let w = histogram_windows()
            .into_iter()
            .find(|w| w.name == "test.windowed.hist")
            .expect("registered");
        assert_eq!(w.buckets.len(), HIST_BUCKETS);
        assert!(w.count() >= 1);
    }

    #[test]
    fn no_duplicate_registrations_in_this_process() {
        let _l = lock();
        static A: Counter = Counter::new("test.unique.one");
        A.incr();
        assert_unique_registrations();
    }
}
