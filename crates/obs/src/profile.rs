//! Merged telemetry profiles and their export views.
//!
//! A [`Profile`] is what [`drain`](crate::drain) returns: every span event
//! from every thread in one time-ordered list, plus counter and histogram
//! snapshots. This module is compiled identically with and without the
//! `obs-off` feature (all fields are public so tests and tools can build
//! synthetic profiles), and renders three views:
//!
//! * [`Profile::render_tree`] — hierarchical span tree, human-readable.
//! * [`Profile::chrome_trace`] — `chrome://tracing` / Perfetto JSON.
//! * [`Profile::prometheus`] — flat Prometheus-style text exposition.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Whether a [`SpanEvent`] opens a span, closes one, or marks an instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Span opened.
    Enter,
    /// Span closed.
    Exit,
    /// Instantaneous point event (request-lifecycle trace mark).
    Point,
}

/// One ring-buffer event, with the label resolved to its name.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// Resolved span name (e.g. `gemm.grouped.cta`).
    pub name: String,
    /// Enter, exit, or point.
    pub kind: EventKind,
    /// Nanoseconds since the process-wide telemetry epoch — or, for trace
    /// marks stamped by a virtual-time serving loop, the loop's simulated
    /// clock in nanoseconds.
    pub t_ns: u64,
    /// Global monotonic sequence number (total order tie-breaker).
    pub seq: u64,
    /// Index into [`Profile::threads`].
    pub thread: usize,
    /// Raw request tag ([`crate::trace::TraceId`]); 0 = untagged.
    pub trace: u64,
}

/// Snapshot of one histogram at drain time.
#[derive(Clone, Debug, Default)]
pub struct HistogramSnapshot {
    /// Histogram name.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// 50th percentile (exact below 256, bucket upper bound above).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

/// A merged, time-ordered telemetry profile.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// All span events, sorted by `(t_ns, seq)`.
    pub events: Vec<SpanEvent>,
    /// `(name, value)` for every registered counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Snapshots of every registered histogram, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Ring-buffer events lost to overflow since the previous drain.
    pub dropped: u64,
    /// Per-ring thread names; `SpanEvent::thread` indexes this.
    pub threads: Vec<String>,
}

/// One node of the hierarchical span tree.
#[derive(Clone, Debug, Default)]
pub struct SpanNode {
    /// Span name at this tree position.
    pub name: String,
    /// Completed enter/exit pairs observed at this position.
    pub count: u64,
    /// Total wall nanoseconds across those pairs.
    pub total_ns: u64,
    /// Child spans, ordered by first appearance.
    pub children: Vec<SpanNode>,
}

impl Profile {
    /// Builds the merged span tree: per-thread enter/exit stacks are matched
    /// into `(path, duration)` pairs and accumulated by path, so the same
    /// span nested under the same parents aggregates across all threads.
    /// Unmatched exits (enter lost to ring overflow) are ignored; unmatched
    /// enters (span still open at drain) contribute nothing.
    pub fn span_tree(&self) -> SpanNode {
        // Per-thread stack of (name, enter time); key paths by joined names.
        let mut stacks: BTreeMap<usize, Vec<(String, u64)>> = BTreeMap::new();
        // path -> (count, total_ns, first-seen order)
        let mut agg: BTreeMap<Vec<String>, (u64, u64, usize)> = BTreeMap::new();
        let mut order = 0usize;
        for ev in &self.events {
            let stack = stacks.entry(ev.thread).or_default();
            match ev.kind {
                EventKind::Enter => stack.push((ev.name.clone(), ev.t_ns)),
                EventKind::Exit => {
                    if stack.last().map(|(n, _)| n == &ev.name).unwrap_or(false) {
                        let (_, t0) = stack.pop().expect("checked non-empty");
                        let mut path: Vec<String> = stack.iter().map(|(n, _)| n.clone()).collect();
                        path.push(ev.name.clone());
                        let e = agg.entry(path).or_insert_with(|| {
                            order += 1;
                            (0, 0, order)
                        });
                        e.0 += 1;
                        e.1 += ev.t_ns.saturating_sub(t0);
                    }
                    // Mismatched exit: its enter predates this drain window.
                }
                // Point events have no duration; they belong to the trace
                // view (`crate::trace`), not the span tree.
                EventKind::Point => {}
            }
        }
        let mut root = SpanNode {
            name: String::new(),
            ..Default::default()
        };
        let mut paths: Vec<_> = agg.iter().collect();
        paths.sort_by_key(|(p, &(_, _, ord))| (p.len(), ord));
        for (path, &(count, total_ns, _)) in paths {
            let mut node = &mut root;
            for seg in path {
                let pos = node.children.iter().position(|c| &c.name == seg);
                let idx = match pos {
                    Some(i) => i,
                    None => {
                        node.children.push(SpanNode {
                            name: seg.clone(),
                            ..Default::default()
                        });
                        node.children.len() - 1
                    }
                };
                node = &mut node.children[idx];
            }
            node.count += count;
            node.total_ns += total_ns;
        }
        root
    }

    /// Flat totals per span *name* (ignoring nesting): `name -> (count,
    /// total_ns)` over matched pairs. This is the join key against the
    /// `Device` modeled trace, which also buckets by kernel name.
    pub fn span_totals(&self) -> BTreeMap<String, (u64, u64)> {
        let mut stacks: BTreeMap<usize, Vec<(String, u64)>> = BTreeMap::new();
        let mut totals: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        for ev in &self.events {
            let stack = stacks.entry(ev.thread).or_default();
            match ev.kind {
                EventKind::Enter => stack.push((ev.name.clone(), ev.t_ns)),
                EventKind::Exit => {
                    if stack.last().map(|(n, _)| n == &ev.name).unwrap_or(false) {
                        let (_, t0) = stack.pop().expect("checked non-empty");
                        let e = totals.entry(ev.name.clone()).or_insert((0, 0));
                        e.0 += 1;
                        e.1 += ev.t_ns.saturating_sub(t0);
                    }
                }
                EventKind::Point => {}
            }
        }
        totals
    }

    /// Renders the hierarchical span tree plus counter and histogram dumps
    /// as indented text — the default `btx profile` view.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "span tree (count, total ms, avg us):");
        fn rec(out: &mut String, node: &SpanNode, depth: usize) {
            if !node.name.is_empty() {
                let avg_us = if node.count > 0 {
                    node.total_ns as f64 / node.count as f64 / 1e3
                } else {
                    0.0
                };
                let _ = writeln!(
                    out,
                    "{:indent$}{:<width$} {:>8} {:>12.3} {:>12.1}",
                    "",
                    node.name,
                    node.count,
                    node.total_ns as f64 / 1e6,
                    avg_us,
                    indent = depth * 2,
                    width = 36usize.saturating_sub(depth * 2),
                );
            }
            for c in &node.children {
                rec(out, c, depth + if node.name.is_empty() { 0 } else { 1 });
            }
        }
        rec(&mut out, &self.span_tree(), 0);
        if self.events.is_empty() {
            let _ = writeln!(out, "  (no span events recorded)");
        }
        if self.dropped > 0 {
            let _ = writeln!(out, "  !! {} events dropped (ring overflow)", self.dropped);
        }
        let _ = writeln!(out, "\ncounters:");
        for (name, v) in &self.counters {
            let _ = writeln!(out, "  {name:<44} {v:>14}");
        }
        if self.counters.is_empty() {
            let _ = writeln!(out, "  (none)");
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "\nhistograms (count / sum / p50 / p95 / p99):");
            for h in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {:<32} {:>8} {:>12} {:>8} {:>8} {:>8}",
                    h.name, h.count, h.sum, h.p50, h.p95, h.p99
                );
            }
        }
        out
    }

    /// Exports `chrome://tracing` (Trace Event Format) JSON: one `B`/`E`
    /// pair per span event, microsecond timestamps, thread-name metadata.
    pub fn chrome_trace(&self) -> String {
        let mut out = String::from("[\n");
        let mut first = true;
        for (tid, name) in self.threads.iter().enumerate() {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
                json_escape(name)
            );
        }
        for ev in &self.events {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let ph = match ev.kind {
                EventKind::Enter => "B",
                EventKind::Exit => "E",
                EventKind::Point => "i",
            };
            let args = if ev.trace != 0 {
                format!(",\"args\":{{\"trace\":{}}}", ev.trace)
            } else {
                String::new()
            };
            let scope = if ev.kind == EventKind::Point {
                ",\"s\":\"t\""
            } else {
                ""
            };
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"ph\":\"{ph}\",\"ts\":{:.3},\"pid\":1,\"tid\":{}{scope}{args}}}",
                json_escape(&ev.name),
                ev.t_ns as f64 / 1e3,
                ev.thread
            );
        }
        out.push_str("\n]\n");
        out
    }

    /// Exports a flat Prometheus-style text dump: counters, per-span
    /// totals, histogram quantiles, and the dropped-event count.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        out.push_str("# TYPE bt_counter counter\n");
        for (name, v) in &self.counters {
            let _ = writeln!(out, "bt_counter{{name=\"{}\"}} {v}", prom_escape(name));
        }
        out.push_str("# TYPE bt_span_nanos_total counter\n# TYPE bt_span_count counter\n");
        for (name, (count, ns)) in self.span_totals() {
            let e = prom_escape(&name);
            let _ = writeln!(out, "bt_span_nanos_total{{span=\"{e}\"}} {ns}");
            let _ = writeln!(out, "bt_span_count{{span=\"{e}\"}} {count}");
        }
        out.push_str("# TYPE bt_histogram summary\n");
        for h in &self.histograms {
            let e = prom_escape(&h.name);
            let _ = writeln!(out, "bt_histogram{{name=\"{e}\",quantile=\"0.5\"}} {}", h.p50);
            let _ = writeln!(out, "bt_histogram{{name=\"{e}\",quantile=\"0.95\"}} {}", h.p95);
            let _ = writeln!(out, "bt_histogram{{name=\"{e}\",quantile=\"0.99\"}} {}", h.p99);
            let _ = writeln!(out, "bt_histogram_sum{{name=\"{e}\"}} {}", h.sum);
            let _ = writeln!(out, "bt_histogram_count{{name=\"{e}\"}} {}", h.count);
        }
        let _ = writeln!(
            out,
            "# TYPE bt_events_dropped counter\nbt_events_dropped {}",
            self.dropped
        );
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn prom_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, kind: EventKind, t_ns: u64, seq: u64, thread: usize) -> SpanEvent {
        SpanEvent {
            name: name.to_string(),
            kind,
            t_ns,
            seq,
            thread,
            trace: 0,
        }
    }

    fn sample() -> Profile {
        Profile {
            events: vec![
                ev("outer", EventKind::Enter, 0, 0, 0),
                ev("inner", EventKind::Enter, 10, 1, 0),
                ev("inner", EventKind::Exit, 30, 2, 0),
                ev("inner", EventKind::Enter, 40, 3, 0),
                ev("inner", EventKind::Exit, 50, 4, 0),
                ev("outer", EventKind::Exit, 100, 5, 0),
                // Second thread: same span standalone.
                ev("inner", EventKind::Enter, 5, 6, 1),
                ev("inner", EventKind::Exit, 15, 7, 1),
            ],
            counters: vec![("pool.launches".into(), 42)],
            histograms: vec![HistogramSnapshot {
                name: "occupancy".into(),
                count: 3,
                sum: 10,
                p50: 3,
                p95: 4,
                p99: 4,
            }],
            dropped: 0,
            threads: vec!["main".into(), "bt-pool-0".into()],
        }
    }

    #[test]
    fn tree_nests_by_stack_and_merges_threads() {
        let p = sample();
        let tree = p.span_tree();
        // Root children: "outer" (thread 0) and "inner" (thread 1, top level).
        assert_eq!(tree.children.len(), 2);
        let outer = tree.children.iter().find(|c| c.name == "outer").unwrap();
        assert_eq!(outer.count, 1);
        assert_eq!(outer.total_ns, 100);
        let nested = outer.children.iter().find(|c| c.name == "inner").unwrap();
        assert_eq!(nested.count, 2);
        assert_eq!(nested.total_ns, 30);
        let top_inner = tree.children.iter().find(|c| c.name == "inner").unwrap();
        assert_eq!(top_inner.count, 1);
        assert_eq!(top_inner.total_ns, 10);
    }

    #[test]
    fn span_totals_flatten_across_nesting() {
        let totals = sample().span_totals();
        assert_eq!(totals["outer"], (1, 100));
        assert_eq!(totals["inner"], (3, 40));
    }

    #[test]
    fn unmatched_exit_is_ignored() {
        let p = Profile {
            events: vec![
                ev("orphan", EventKind::Exit, 5, 0, 0),
                ev("a", EventKind::Enter, 10, 1, 0),
                ev("a", EventKind::Exit, 20, 2, 0),
            ],
            threads: vec!["main".into()],
            ..Default::default()
        };
        let totals = p.span_totals();
        assert!(!totals.contains_key("orphan"));
        assert_eq!(totals["a"], (1, 10));
    }

    #[test]
    fn chrome_trace_is_balanced_json() {
        let json = sample().chrome_trace();
        assert!(json.starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 4);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 4);
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("bt-pool-0"));
        // Every object opened is closed.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn prometheus_dump_has_all_families() {
        let text = sample().prometheus();
        assert!(text.contains("bt_counter{name=\"pool.launches\"} 42"));
        assert!(text.contains("bt_span_nanos_total{span=\"outer\"} 100"));
        assert!(text.contains("bt_span_count{span=\"inner\"} 3"));
        assert!(text.contains("bt_histogram{name=\"occupancy\",quantile=\"0.95\"} 4"));
        assert!(text.contains("bt_events_dropped 0"));
    }

    #[test]
    fn render_tree_mentions_everything() {
        let text = sample().render_tree();
        assert!(text.contains("outer"));
        assert!(text.contains("pool.launches"));
        assert!(text.contains("occupancy"));
    }

    #[test]
    fn point_events_skip_span_views_but_export_as_instants() {
        let mut p = sample();
        let mut mark = ev("req.enqueue", EventKind::Point, 7, 8, 0);
        mark.trace = 42;
        p.events.push(mark);
        let totals = p.span_totals();
        assert!(!totals.contains_key("req.enqueue"));
        assert_eq!(p.span_tree().children.len(), 2, "tree unchanged by points");
        let json = p.chrome_trace();
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"args\":{\"trace\":42}"));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
