//! Windowed metrics aggregation.
//!
//! The recording layer keeps *cumulative* counters and histogram buckets;
//! this module turns successive reads of that state into per-window
//! [`MetricsSnapshot`]s: delta counters, windowed p50/p95/p99 (computed
//! from raw bucket deltas with the exact same math the live histograms
//! use), per-ISA/per-precision GEMM rates, KV-pool high-water, and the
//! shed-reason breakdown. Snapshots serialize to JSON and Prometheus text
//! and [`merge`] so N shards can be rolled up into one fleet view.
//!
//! The snapshot cadence is `BYTE_OBS_WINDOW_MS` (default 1000);
//! [`SnapshotLoop`] runs the periodic loop on a background thread.
//!
//! This module is compiled identically with and without the `obs-off`
//! feature; under `obs-off` the registries read empty and every snapshot
//! is empty.

use crate::names;
use crate::profile::{json_escape, HistogramSnapshot};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// bucket geometry (shared by the live histograms and windowed aggregation)
// ---------------------------------------------------------------------------

/// Linear buckets (exact) below this value; log2 buckets above.
pub const HIST_LINEAR: usize = 256;
/// 256 linear + one bucket per power of two from 2^8 through 2^63.
pub const HIST_BUCKETS: usize = HIST_LINEAR + 56;

/// The bucket index recording value `v`.
pub fn bucket_of(v: u64) -> usize {
    if v < HIST_LINEAR as u64 {
        v as usize
    } else {
        HIST_LINEAR + (63 - v.leading_zeros() as usize) - 8
    }
}

/// Upper bound of bucket `i` (exact for linear buckets).
pub fn bucket_upper(i: usize) -> u64 {
    if i < HIST_LINEAR {
        i as u64
    } else {
        let e = i - HIST_LINEAR + 9;
        if e >= 64 {
            u64::MAX
        } else {
            (1u64 << e) - 1
        }
    }
}

// ---------------------------------------------------------------------------
// windowed histogram
// ---------------------------------------------------------------------------

/// A histogram's raw bucket state — cumulative when read from the registry,
/// a per-window delta inside a [`MetricsSnapshot`]. Carrying the buckets
/// (not pre-baked percentiles) is what makes shard merging exact:
/// percentiles are recomputed after summing buckets.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramWindow {
    /// Histogram name.
    pub name: String,
    /// One count per bucket ([`HIST_BUCKETS`] entries).
    pub buckets: Vec<u64>,
    /// Sum of observed values.
    pub sum: u64,
}

impl HistogramWindow {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The value at quantile `q` (same rank-scan as the live layer:
    /// exact below 256, bucket upper bound above).
    ///
    /// # Resolution
    /// The report is the upper bound of the bucket holding the rank-`q`
    /// observation `v`, so the error is bounded by the bucket geometry:
    /// **exact** for `v <` [`HIST_LINEAR`] (linear buckets record each
    /// value in its own bucket), and within one power of two above —
    /// `v ≤ reported < 2·v` — since log2 buckets span `[2^e, 2^{e+1})` and
    /// report `2^{e+1} − 1`. Merging shards preserves these bounds exactly
    /// (buckets are summed, never re-binned); the property suite
    /// (`snapshot_merge_properties.rs`) pins both.
    pub fn percentile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = (q * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(HIST_BUCKETS - 1)
    }

    /// A p50/p95/p99 snapshot of this window.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            name: self.name.clone(),
            count: self.count(),
            sum: self.sum,
            p50: self.percentile(0.50),
            p95: self.percentile(0.95),
            p99: self.percentile(0.99),
        }
    }

    /// Bucket-wise difference `self − earlier` (for cumulative reads taken
    /// at window edges).
    fn delta_since(&self, earlier: Option<&HistogramWindow>) -> HistogramWindow {
        match earlier {
            None => self.clone(),
            Some(e) => HistogramWindow {
                name: self.name.clone(),
                buckets: self
                    .buckets
                    .iter()
                    .zip(e.buckets.iter().chain(std::iter::repeat(&0)))
                    .map(|(now, then)| now.saturating_sub(*then))
                    .collect(),
                sum: self.sum.saturating_sub(e.sum),
            },
        }
    }

    /// Adds `other`'s buckets into this window (shard merge).
    fn absorb(&mut self, other: &HistogramWindow) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.sum += other.sum;
    }
}

// ---------------------------------------------------------------------------
// snapshot
// ---------------------------------------------------------------------------

/// One counter inside a snapshot window.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterDelta {
    /// Counter name.
    pub name: String,
    /// Increment observed during this window.
    pub delta: u64,
    /// Cumulative value at the window's end.
    pub total: u64,
}

/// One aggregation window: delta counters and windowed histograms, plus
/// derived serving views. Produced by [`Aggregator::snapshot`]; mergeable
/// across shards with [`merge`].
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Shard label (hostname, worker index, …); `merge` concatenates.
    pub shard: String,
    /// Window length in milliseconds.
    pub window_ms: u64,
    /// Per-counter deltas, sorted by name.
    pub counters: Vec<CounterDelta>,
    /// Per-histogram windowed bucket deltas, sorted by name.
    pub histograms: Vec<HistogramWindow>,
}

impl MetricsSnapshot {
    /// The window's increment of counter `name` (0 if unregistered).
    pub fn delta(&self, name: &str) -> u64 {
        self.counters.iter().find(|c| c.name == name).map_or(0, |c| c.delta)
    }

    /// The cumulative value of counter `name` at window end.
    pub fn total(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.total)
    }

    /// Events per second of counter `name` over this window.
    pub fn rate_per_sec(&self, name: &str) -> f64 {
        if self.window_ms == 0 {
            return 0.0;
        }
        self.delta(name) as f64 * 1e3 / self.window_ms as f64
    }

    /// Windowed GFLOP/s per GEMM dispatch path, from the
    /// `gemm.flops.<isa>.<prec>` counters: `[("avx512.f32", 12.3), …]`.
    pub fn gemm_rates(&self) -> Vec<(String, f64)> {
        self.counters
            .iter()
            .filter(|c| c.name.starts_with(names::GEMM_FLOPS_PREFIX))
            .map(|c| {
                let path = c.name[names::GEMM_FLOPS_PREFIX.len()..].to_string();
                (path, self.rate_per_sec(&c.name) / 1e9)
            })
            .collect()
    }

    /// Windowed shed counts by `<loop>.<reason>`, from every counter whose
    /// name contains `.shed` (zero-delta reasons omitted).
    pub fn shed_breakdown(&self) -> Vec<(String, u64)> {
        self.counters
            .iter()
            .filter(|c| c.name.contains(".shed") && c.delta > 0)
            .map(|c| (c.name.clone(), c.delta))
            .collect()
    }

    /// The KV block-pool high-water mark, if the pool has reported one.
    pub fn kv_pool_high_water(&self) -> Option<u64> {
        self.total(names::KV_POOL_HIGH_WATER)
    }

    /// The windowed view of histogram `name`.
    pub fn histogram(&self, name: &str) -> Option<&HistogramWindow> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Serializes the snapshot as a self-contained JSON object (histograms
    /// as percentile summaries, not raw buckets).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"shard\": \"{}\",", json_escape(&self.shard));
        let _ = writeln!(out, "  \"window_ms\": {},", self.window_ms);
        out.push_str("  \"counters\": {\n");
        for (i, c) in self.counters.iter().enumerate() {
            let _ = writeln!(
                out,
                "    \"{}\": {{\"delta\": {}, \"total\": {}}}{}",
                json_escape(&c.name),
                c.delta,
                c.total,
                if i + 1 == self.counters.len() { "" } else { "," }
            );
        }
        out.push_str("  },\n  \"histograms\": {\n");
        for (i, h) in self.histograms.iter().enumerate() {
            let s = h.snapshot();
            let _ = writeln!(
                out,
                "    \"{}\": {{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}{}",
                json_escape(&h.name),
                s.count,
                s.sum,
                s.p50,
                s.p95,
                s.p99,
                if i + 1 == self.histograms.len() { "" } else { "," }
            );
        }
        out.push_str("  },\n  \"gemm_gflops\": {\n");
        let rates = self.gemm_rates();
        for (i, (path, gf)) in rates.iter().enumerate() {
            let _ = writeln!(
                out,
                "    \"{}\": {gf:.3}{}",
                json_escape(path),
                if i + 1 == rates.len() { "" } else { "," }
            );
        }
        let _ = writeln!(
            out,
            "  }},\n  \"kv_pool_high_water_blocks\": {}",
            self.kv_pool_high_water().map_or("null".to_string(), |v| v.to_string())
        );
        out.push_str("}\n");
        out
    }

    /// Serializes the snapshot as Prometheus text exposition (windowed
    /// families are suffixed `_window`; totals stay cumulative).
    pub fn to_prometheus(&self) -> String {
        let shard = crate::profile::json_escape(&self.shard);
        let mut out = String::new();
        out.push_str("# TYPE bt_counter_window gauge\n# TYPE bt_counter counter\n");
        for c in &self.counters {
            let name = json_escape(&c.name);
            let _ = writeln!(
                out,
                "bt_counter_window{{name=\"{name}\",shard=\"{shard}\"}} {}",
                c.delta
            );
            let _ = writeln!(out, "bt_counter{{name=\"{name}\",shard=\"{shard}\"}} {}", c.total);
        }
        out.push_str("# TYPE bt_histogram_window summary\n");
        for h in &self.histograms {
            let s = h.snapshot();
            let name = json_escape(&h.name);
            for (q, v) in [("0.5", s.p50), ("0.95", s.p95), ("0.99", s.p99)] {
                let _ = writeln!(
                    out,
                    "bt_histogram_window{{name=\"{name}\",shard=\"{shard}\",quantile=\"{q}\"}} {v}"
                );
            }
            let _ = writeln!(
                out,
                "bt_histogram_window_count{{name=\"{name}\",shard=\"{shard}\"}} {}",
                s.count
            );
            let _ = writeln!(
                out,
                "bt_histogram_window_sum{{name=\"{name}\",shard=\"{shard}\"}} {}",
                s.sum
            );
        }
        out.push_str("# TYPE bt_gemm_gflops_window gauge\n");
        for (path, gf) in self.gemm_rates() {
            let _ = writeln!(
                out,
                "bt_gemm_gflops_window{{path=\"{}\",shard=\"{shard}\"}} {gf:.3}",
                json_escape(&path)
            );
        }
        out
    }
}

/// Rolls N shard snapshots into one: counter deltas and histogram buckets
/// are summed by name (percentiles recomputed from the summed buckets, so
/// the merged quantiles are exact), high-water counters (name contains
/// `high_water`) merge by max, and the window is the widest input window.
pub fn merge(shards: &[MetricsSnapshot]) -> MetricsSnapshot {
    let mut counters: HashMap<String, CounterDelta> = HashMap::new();
    let mut histograms: HashMap<String, HistogramWindow> = HashMap::new();
    for s in shards {
        for c in &s.counters {
            let e = counters.entry(c.name.clone()).or_insert_with(|| CounterDelta {
                name: c.name.clone(),
                delta: 0,
                total: 0,
            });
            if c.name.contains("high_water") {
                e.delta = e.delta.max(c.delta);
                e.total = e.total.max(c.total);
            } else {
                e.delta += c.delta;
                e.total += c.total;
            }
        }
        for h in &s.histograms {
            histograms
                .entry(h.name.clone())
                .or_insert_with(|| HistogramWindow {
                    name: h.name.clone(),
                    buckets: vec![0; HIST_BUCKETS],
                    sum: 0,
                })
                .absorb(h);
        }
    }
    let mut counters: Vec<CounterDelta> = counters.into_values().collect();
    counters.sort_by(|a, b| a.name.cmp(&b.name));
    let mut histograms: Vec<HistogramWindow> = histograms.into_values().collect();
    histograms.sort_by(|a, b| a.name.cmp(&b.name));
    MetricsSnapshot {
        shard: format!("merge({})", shards.len()),
        window_ms: shards.iter().map(|s| s.window_ms).max().unwrap_or(0),
        counters,
        histograms,
    }
}

impl MetricsSnapshot {
    /// Associated-function spelling of the free [`merge`]: rolls N shard
    /// snapshots into one fleet view. The operation is associative and
    /// commutative up to the synthesized `shard` label (pinned by the
    /// property suite), so shards can be folded in any order or grouping.
    pub fn merge(shards: &[MetricsSnapshot]) -> MetricsSnapshot {
        merge(shards)
    }
}

// ---------------------------------------------------------------------------
// aggregator + periodic loop
// ---------------------------------------------------------------------------

/// Diffs successive reads of the cumulative registries into windowed
/// [`MetricsSnapshot`]s. Construction primes the baseline, so the first
/// `snapshot()` covers activity since `new()` (not since process start).
pub struct Aggregator {
    shard: String,
    last: Instant,
    prev_counters: HashMap<String, u64>,
    prev_hists: HashMap<String, HistogramWindow>,
}

impl Aggregator {
    /// An aggregator labeled `shard`, primed on the current registry state.
    pub fn new(shard: &str) -> Aggregator {
        let mut a = Aggregator {
            shard: shard.to_string(),
            last: Instant::now(),
            prev_counters: HashMap::new(),
            prev_hists: HashMap::new(),
        };
        a.prime();
        a
    }

    fn prime(&mut self) {
        self.prev_counters = crate::counter_values().into_iter().collect();
        self.prev_hists = crate::histogram_windows()
            .into_iter()
            .map(|h| (h.name.clone(), h))
            .collect();
        self.last = Instant::now();
    }

    /// Closes the current window and returns its snapshot.
    pub fn snapshot(&mut self) -> MetricsSnapshot {
        let window_ms = (self.last.elapsed().as_millis() as u64).max(1);
        let counters: Vec<CounterDelta> = crate::counter_values()
            .into_iter()
            .map(|(name, total)| {
                let prev = self.prev_counters.get(&name).copied().unwrap_or(0);
                CounterDelta {
                    delta: total.saturating_sub(prev),
                    name,
                    total,
                }
            })
            .collect();
        let histograms: Vec<HistogramWindow> = crate::histogram_windows()
            .into_iter()
            .map(|h| h.delta_since(self.prev_hists.get(&h.name)))
            .collect();
        self.prime();
        MetricsSnapshot {
            shard: self.shard.clone(),
            window_ms,
            counters,
            histograms,
        }
    }
}

/// The snapshot cadence from `BYTE_OBS_WINDOW_MS` (default 1000 ms; zero
/// or unparsable values warn once and fall back to the default).
pub fn window_ms_from_env() -> u64 {
    match std::env::var("BYTE_OBS_WINDOW_MS") {
        Err(_) => 1000,
        Ok(v) => match v.trim().parse::<u64>() {
            Ok(ms) if ms > 0 => ms,
            _ => {
                crate::warn_once(
                    "obs.window_ms.invalid",
                    &format!("BYTE_OBS_WINDOW_MS={v:?} is not a positive integer; using 1000"),
                );
                1000
            }
        },
    }
}

/// A background thread that emits one [`MetricsSnapshot`] per window to a
/// sink callback. Stopping (or dropping) the loop flushes a final partial
/// window so short runs still produce at least one snapshot.
pub struct SnapshotLoop {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl SnapshotLoop {
    /// Spawns the loop with cadence `window`, labeling snapshots `shard`.
    pub fn spawn(
        shard: &str,
        window: Duration,
        mut sink: impl FnMut(MetricsSnapshot) + Send + 'static,
    ) -> SnapshotLoop {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let shard = shard.to_string();
        let handle = std::thread::Builder::new()
            .name("bt-obs-snapshot".to_string())
            .spawn(move || {
                let mut agg = Aggregator::new(&shard);
                let tick = Duration::from_millis(10).min(window);
                let mut elapsed = Duration::ZERO;
                loop {
                    if stop2.load(Ordering::Relaxed) {
                        sink(agg.snapshot());
                        return;
                    }
                    std::thread::sleep(tick);
                    elapsed += tick;
                    if elapsed >= window {
                        elapsed = Duration::ZERO;
                        sink(agg.snapshot());
                    }
                }
            })
            .expect("spawn snapshot loop");
        SnapshotLoop {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the loop, flushing one final snapshot to the sink.
    pub fn stop(mut self) {
        self.join();
    }

    fn join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for SnapshotLoop {
    fn drop(&mut self) {
        self.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window_of(values: &[u64], name: &str) -> HistogramWindow {
        let mut buckets = vec![0u64; HIST_BUCKETS];
        let mut sum = 0;
        for &v in values {
            buckets[bucket_of(v)] += 1;
            sum += v;
        }
        HistogramWindow {
            name: name.to_string(),
            buckets,
            sum,
        }
    }

    #[test]
    fn windowed_percentiles_match_live_math() {
        let w = window_of(&(1..=100).collect::<Vec<u64>>(), "w");
        assert_eq!(w.count(), 100);
        assert_eq!(w.percentile(0.50), 50);
        assert_eq!(w.percentile(0.95), 95);
        assert_eq!(w.percentile(0.99), 99);
        let s = w.snapshot();
        assert_eq!((s.p50, s.p95, s.p99), (50, 95, 99));
    }

    #[test]
    fn delta_since_subtracts_bucketwise() {
        let earlier = window_of(&[5, 10], "w");
        let now = window_of(&[5, 10, 20, 20], "w");
        let d = now.delta_since(Some(&earlier));
        assert_eq!(d.count(), 2);
        assert_eq!(d.sum, 40);
        assert_eq!(d.percentile(0.99), 20);
    }

    #[test]
    fn merged_shards_have_exact_quantiles() {
        let a = MetricsSnapshot {
            shard: "a".into(),
            window_ms: 1000,
            counters: vec![CounterDelta {
                name: "serve.served".into(),
                delta: 10,
                total: 100,
            }],
            histograms: vec![window_of(&[1, 2, 3], "lat")],
        };
        let b = MetricsSnapshot {
            shard: "b".into(),
            window_ms: 900,
            counters: vec![
                CounterDelta {
                    name: "serve.served".into(),
                    delta: 5,
                    total: 50,
                },
                CounterDelta {
                    name: crate::names::KV_POOL_HIGH_WATER.into(),
                    delta: 0,
                    total: 32,
                },
            ],
            histograms: vec![window_of(&[97, 98, 99], "lat")],
        };
        let m = merge(&[a, b]);
        assert_eq!(m.window_ms, 1000);
        assert_eq!(m.delta("serve.served"), 15);
        assert_eq!(m.total("serve.served"), Some(150));
        assert_eq!(m.kv_pool_high_water(), Some(32));
        let lat = m.histogram("lat").unwrap();
        assert_eq!(lat.count(), 6);
        // Exact merged quantiles: the union {1,2,3,97,98,99}.
        assert_eq!(lat.percentile(0.5), 3);
        assert_eq!(lat.percentile(0.99), 99);
    }

    #[test]
    fn derived_views_read_the_right_counters() {
        let s = MetricsSnapshot {
            shard: "test".into(),
            window_ms: 1000,
            counters: vec![
                CounterDelta {
                    name: format!("{}avx512.f32", crate::names::GEMM_FLOPS_PREFIX),
                    delta: 2_000_000_000,
                    total: 2_000_000_000,
                },
                CounterDelta {
                    name: "serve.shed.queue_full".into(),
                    delta: 3,
                    total: 3,
                },
                CounterDelta {
                    name: "serve.shed.too_long".into(),
                    delta: 0,
                    total: 7,
                },
            ],
            histograms: vec![],
        };
        let rates = s.gemm_rates();
        assert_eq!(rates.len(), 1);
        assert_eq!(rates[0].0, "avx512.f32");
        assert!((rates[0].1 - 2.0).abs() < 1e-9, "2 GFLOP over 1 s = 2 GFLOP/s");
        assert_eq!(s.shed_breakdown(), vec![("serve.shed.queue_full".to_string(), 3)]);
    }

    #[test]
    fn json_and_prometheus_render_all_sections() {
        let s = MetricsSnapshot {
            shard: "shard0".into(),
            window_ms: 500,
            counters: vec![CounterDelta {
                name: "serve.served".into(),
                delta: 4,
                total: 44,
            }],
            histograms: vec![window_of(&[7, 9], "serve.queue_wait_us")],
        };
        let json = s.to_json();
        assert!(json.contains("\"shard\": \"shard0\""));
        assert!(json.contains("\"serve.served\": {\"delta\": 4, \"total\": 44}"));
        assert!(json.contains("\"p99\": 9"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let prom = s.to_prometheus();
        assert!(prom.contains("bt_counter_window{name=\"serve.served\",shard=\"shard0\"} 4"));
        assert!(prom.contains("bt_histogram_window{name=\"serve.queue_wait_us\",shard=\"shard0\",quantile=\"0.99\"} 9"));
    }

    #[test]
    fn window_env_parses_and_defaults() {
        // Not exercising the env var itself (process-global); just the
        // default path.
        if std::env::var("BYTE_OBS_WINDOW_MS").is_err() {
            assert_eq!(window_ms_from_env(), 1000);
        }
    }

    #[test]
    fn aggregator_and_loop_produce_snapshots() {
        // Under obs-off the registries are empty; the machinery must still
        // run and emit (empty) snapshots.
        let mut agg = Aggregator::new("t");
        let s = agg.snapshot();
        assert_eq!(s.shard, "t");
        assert!(s.window_ms >= 1);

        let seen = Arc::new(std::sync::Mutex::new(0usize));
        let seen2 = Arc::clone(&seen);
        let lp = SnapshotLoop::spawn("t", Duration::from_millis(20), move |_s| {
            *seen2.lock().unwrap() += 1;
        });
        std::thread::sleep(Duration::from_millis(60));
        lp.stop();
        assert!(*seen.lock().unwrap() >= 1, "loop must emit at least the final flush");
    }
}
