//! End-to-end equivalence: an independent straight-line BERT reference
//! implementation (plain loops, no kernels, no packing) must agree with
//! every optimization level of the encoder and every framework simulation
//! on valid tokens.

use bytetransformer::kernels::activation::gelu_tanh;
use bytetransformer::prelude::*;

/// Straight-line BERT encoder layer on one sequence (no batching, no
/// padding): the independent oracle.
fn reference_layer(
    config: &BertConfig,
    w: &bytetransformer::core::weights::LayerWeights,
    x: &[f32], // [len, hidden]
    len: usize,
) -> Vec<f32> {
    let hidden = config.hidden();
    let heads = config.heads;
    let head = config.head_size;
    let inter = config.intermediate();
    let scale = config.attention_scale();

    let matmul = |a: &[f32], rows: usize, w: &[f32], k: usize, n: usize| -> Vec<f32> {
        let mut out = vec![0.0f32; rows * n];
        for i in 0..rows {
            for p in 0..k {
                let av = a[i * k + p];
                for j in 0..n {
                    out[i * n + j] += av * w[p * n + j];
                }
            }
        }
        out
    };
    let layernorm = |x: &mut [f32], gamma: &[f32], beta: &[f32]| {
        for row in x.chunks_mut(hidden) {
            let mean = row.iter().sum::<f32>() / hidden as f32;
            let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / hidden as f32;
            let inv = 1.0 / (var + config.eps).sqrt();
            for (i, v) in row.iter_mut().enumerate() {
                *v = gamma[i] * (*v - mean) * inv + beta[i];
            }
        }
    };

    // QKV projection + bias.
    let mut qkv = matmul(x, len, w.qkv_weight.as_slice(), hidden, 3 * hidden);
    for row in qkv.chunks_mut(3 * hidden) {
        for (v, &b) in row.iter_mut().zip(&w.qkv_bias) {
            *v += b;
        }
    }

    // Attention per head.
    let mut ctx = vec![0.0f32; len * hidden];
    for h in 0..heads {
        for i in 0..len {
            let q = &qkv[i * 3 * hidden + h * head..i * 3 * hidden + (h + 1) * head];
            let mut logits = vec![0.0f32; len];
            for (j, l) in logits.iter_mut().enumerate() {
                let k_row = &qkv[j * 3 * hidden + hidden + h * head..j * 3 * hidden + hidden + (h + 1) * head];
                *l = q.iter().zip(k_row).map(|(&a, &b)| a * b).sum::<f32>() * scale;
            }
            let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for l in &mut logits {
                *l = (*l - max).exp();
                sum += *l;
            }
            for l in &mut logits {
                *l /= sum;
            }
            for (j, &p) in logits.iter().enumerate() {
                let v_row = &qkv[j * 3 * hidden + 2 * hidden + h * head..j * 3 * hidden + 2 * hidden + (h + 1) * head];
                for (dd, &vv) in v_row.iter().enumerate() {
                    ctx[i * hidden + h * head + dd] += p * vv;
                }
            }
        }
    }

    // Output projection + residual + LN.
    let mut attn = matmul(&ctx, len, w.attn_out_weight.as_slice(), hidden, hidden);
    for (i, row) in attn.chunks_mut(hidden).enumerate() {
        for (j, v) in row.iter_mut().enumerate() {
            *v += x[i * hidden + j] + w.attn_out_bias[j];
        }
    }
    layernorm(&mut attn, &w.ln0_gamma, &w.ln0_beta);

    // FFN.
    let mut up = matmul(&attn, len, w.ffn_up_weight.as_slice(), hidden, inter);
    for row in up.chunks_mut(inter) {
        for (v, &b) in row.iter_mut().zip(&w.ffn_up_bias) {
            *v = gelu_tanh(*v + b);
        }
    }
    let mut out = matmul(&up, len, w.ffn_down_weight.as_slice(), inter, hidden);
    for (i, row) in out.chunks_mut(hidden).enumerate() {
        for (j, v) in row.iter_mut().enumerate() {
            *v += attn[i * hidden + j] + w.ffn_down_bias[j];
        }
    }
    layernorm(&mut out, &w.ln1_gamma, &w.ln1_beta);
    out
}

fn reference_forward(model: &BertModel, input: &Tensor, mask: &BatchMask) -> Vec<Vec<f32>> {
    let hidden = model.config.hidden();
    let seq = mask.max_seq_len();
    mask.seq_lens()
        .iter()
        .enumerate()
        .map(|(b, &len)| {
            let mut x = vec![0.0f32; len * hidden];
            for s in 0..len {
                for h in 0..hidden {
                    x[s * hidden + h] = input.at(&[b, s, h]).unwrap();
                }
            }
            let _ = seq;
            for w in &model.weights.layers {
                x = reference_layer(&model.config, w, &x, len);
            }
            x
        })
        .collect()
}

fn compare_valid(out: &Tensor, reference: &[Vec<f32>], mask: &BatchMask, tol: f32, label: &str) {
    let hidden = out.dims()[2];
    for (b, &len) in mask.seq_lens().iter().enumerate() {
        for s in 0..len {
            for h in 0..hidden {
                let got = out.at(&[b, s, h]).unwrap();
                let expect = reference[b][s * hidden + h];
                assert!(
                    (got - expect).abs() < tol,
                    "{label}: ({b},{s},{h}) got {got}, expected {expect}"
                );
            }
        }
    }
}

fn setup() -> (BertModel, Tensor, BatchMask) {
    let config = BertConfig::tiny();
    let model = BertModel::new_random(config, 2, 42);
    let mask = BatchMask::from_lens(vec![5, 12, 1, 8], 12).unwrap();
    let mut input = Tensor::randn([4, 12, config.hidden()], 9);
    for (b, &len) in mask.seq_lens().iter().enumerate() {
        for s in len..12 {
            for h in 0..config.hidden() {
                input.set(&[b, s, h], 0.0).unwrap();
            }
        }
    }
    (model, input, mask)
}

#[test]
fn every_opt_level_matches_the_independent_reference() {
    let (model, input, mask) = setup();
    let reference = reference_forward(&model, &input, &mask);
    for opt in OptLevel::all() {
        let dev = Device::new();
        let out = model.forward(&dev, &input, &mask, opt).unwrap();
        compare_valid(&out, &reference, &mask, 5e-3, &format!("{opt:?}"));
    }
}

#[test]
fn every_framework_matches_the_independent_reference() {
    let (model, input, mask) = setup();
    let reference = reference_forward(&model, &input, &mask);
    for kind in FrameworkKind::all() {
        let fw = SimFramework::new(kind, model.clone());
        let dev = fw.device(CostModel::a100());
        let out = fw.forward(&dev, &input, &mask).unwrap();
        compare_valid(&out, &reference, &mask, 5e-3, kind.name());
    }
}

#[test]
fn long_sequence_grouped_path_matches_reference() {
    // Force the grouped fused-MHA path (max_seq > 384).
    let config = BertConfig::tiny();
    let model = BertModel::new_random(config, 1, 4);
    let mask = BatchMask::from_lens(vec![400, 77], 400).unwrap();
    let mut input = Tensor::randn([2, 400, config.hidden()], 13);
    for s in 77..400 {
        for h in 0..config.hidden() {
            input.set(&[1, s, h], 0.0).unwrap();
        }
    }
    let reference = reference_forward(&model, &input, &mask);
    let dev = Device::new();
    let out = model.forward(&dev, &input, &mask, OptLevel::FusedMha).unwrap();
    compare_valid(&out, &reference, &mask, 5e-3, "grouped path");
    // The trace must show the grouped kernels, not the short path.
    let trace = dev.trace();
    assert!(trace.iter().any(|r| r.name.contains("grouped.qk")));
    assert!(!trace.iter().any(|r| r.name.contains("fused_short")));
}
