//! Framework-simulation behaviour: structural properties the paper asserts
//! about each competitor, verified from the launch traces.

use bytetransformer::frameworks::calibration::FT_FUSED_MHA_MAX_SEQ;
use bytetransformer::prelude::*;

fn setup(lens: &[usize], max_seq: usize, layers: usize) -> (BertModel, Tensor, BatchMask) {
    let config = BertConfig::tiny();
    let model = BertModel::new_random(config, layers, 42);
    let mask = BatchMask::from_lens(lens.to_vec(), max_seq).unwrap();
    let mut input = Tensor::randn([mask.batch(), max_seq, config.hidden()], 7);
    for (b, &len) in mask.seq_lens().iter().enumerate() {
        for s in len..max_seq {
            for h in 0..config.hidden() {
                input.set(&[b, s, h], 0.0).unwrap();
            }
        }
    }
    (model, input, mask)
}

#[test]
fn pytorch_runs_the_unfused_padded_chain() {
    let (model, input, mask) = setup(&[6, 3], 8, 1);
    let fw = SimFramework::new(FrameworkKind::PyTorchJit, model);
    let dev = fw.device(CostModel::a100());
    fw.forward(&dev, &input, &mask).unwrap();
    let names: Vec<String> = dev.trace().iter().map(|r| r.name.clone()).collect();
    assert!(names.iter().any(|n| n.contains("naive.scale")), "separate scale kernel");
    assert!(names.iter().any(|n| n.contains("naive.mask")), "separate mask kernel");
    assert!(names.iter().any(|n| n.contains("layernorm0.norm")), "unfused layernorm");
    assert!(!names.iter().any(|n| n.starts_with("varlen")), "no packing");
}

#[test]
fn faster_transformer_switches_mha_at_512() {
    let (model, input, mask) = setup(&[100, 60], 100, 1);
    let fw = SimFramework::new(FrameworkKind::FasterTransformer, model.clone());
    let dev = fw.device(CostModel::a100());
    fw.forward(&dev, &input, &mask).unwrap();
    assert!(
        dev.trace().iter().any(|r| r.name.contains("flash")),
        "fused MHA below 512"
    );

    let (model2, input2, mask2) = setup(&[600, 200], 600, 1);
    let fw = SimFramework::new(FrameworkKind::FasterTransformer, model2);
    let dev = fw.device(CostModel::a100());
    fw.forward(&dev, &input2, &mask2).unwrap();
    assert!(
        !dev.trace().iter().any(|r| r.name.contains("flash")),
        "no fused MHA above {FT_FUSED_MHA_MAX_SEQ}"
    );
    assert!(
        dev.trace().iter().any(|r| r.name.contains("batched.scores")),
        "unfused fallback"
    );
    let _ = (model, input, mask);
}

#[test]
fn turbo_regroups_and_pads_within_groups() {
    let (model, input, mask) = setup(&[12, 12, 3, 3], 12, 1);
    let fw = SimFramework::new(FrameworkKind::TurboTransformer, model);
    let dev = fw.device(CostModel::a100());
    fw.forward(&dev, &input, &mask).unwrap();
    let regroups = dev.trace().iter().filter(|r| r.name == "turbo.regroup").count();
    assert_eq!(regroups, 2, "two length clusters -> two groups");
    // Group of 3-token sequences runs attention at padded length 3, not 12:
    // its scores GEMM flops are tiny compared to the long group's.
    let scores: Vec<u64> = dev
        .trace()
        .iter()
        .filter(|r| r.name.contains("batched.scores"))
        .map(|r| r.cost.flops)
        .collect();
    assert_eq!(scores.len(), 2);
    let (small, large) = (scores.iter().min().unwrap(), scores.iter().max().unwrap());
    assert!(small * 8 < *large, "short group should run at its own length");
}

#[test]
fn bytetransformer_never_materializes_padded_attention() {
    let (model, input, mask) = setup(&[6, 3], 8, 2);
    let fw = SimFramework::new(FrameworkKind::ByteTransformer, model);
    let dev = fw.device(CostModel::a100());
    fw.forward(&dev, &input, &mask).unwrap();
    let names: Vec<String> = dev.trace().iter().map(|r| r.name.clone()).collect();
    assert!(names
        .iter()
        .any(|n| n.contains("fused_short") || n.contains("grouped.qk")));
    assert!(!names.iter().any(|n| n.contains("batched.scores")));
    assert!(!names.iter().any(|n| n.contains("softmax")), "softmax fully fused away");
}

#[test]
fn fig14_shape_framework_ordering_at_scale() {
    // A larger α=0.6 batch on the A100 model: ByteTransformer < Faster-
    // Transformer < {PyTorch, TensorFlow}; Turbo degrades with batch — the
    // qualitative shape of Fig. 14.
    let config = BertConfig {
        heads: 4,
        head_size: 16,
        ffn_scale: 4,
        layers: 1,
        eps: 1e-6,
    };
    let model = BertModel::new_random(config, 2, 3);
    let mask = bytetransformer::varlen::workload::paper_workload(16, 128, 9);
    let mut input = Tensor::randn([16, 128, config.hidden()], 11);
    for (b, &len) in mask.seq_lens().iter().enumerate() {
        for s in len..128 {
            for h in 0..config.hidden() {
                input.set(&[b, s, h], 0.0).unwrap();
            }
        }
    }
    let time = |kind: FrameworkKind| -> f64 {
        let fw = SimFramework::new(kind, model.clone());
        let dev = fw.device(CostModel::a100());
        fw.forward(&dev, &input, &mask).unwrap();
        dev.modeled_total()
    };
    let bt = time(FrameworkKind::ByteTransformer);
    let ft = time(FrameworkKind::FasterTransformer);
    let pt = time(FrameworkKind::PyTorchJit);
    let tf = time(FrameworkKind::TensorFlowXla);
    let turbo = time(FrameworkKind::TurboTransformer);
    assert!(bt < ft, "BT {bt} !< FT {ft}");
    assert!(ft < pt, "FT {ft} !< PyTorch {pt}");
    assert!(ft < tf, "FT {ft} !< TF {tf}");
    assert!(bt < turbo, "BT {bt} !< Turbo {turbo}");
}
