//! Seeded stress suite for the multi-shard router (`bt-frameworks::shard`).
//!
//! Pins the sharding acceptance contract:
//! * `--shards 1` is **bit-identical** to the unsharded server for a fixed
//!   seed, under every routing policy (the horizon rule makes a single
//!   routed shard replay the monolithic loop instruction for instruction);
//! * global accounting is exact across shards —
//!   `offered == Σ per-shard (served + shed)` — and the per-shard offered
//!   counts partition the trace, including when the hot-shard gate sheds
//!   at routing time;
//! * sharded runs replay bit-identically for a fixed seed (trace, policy
//!   seed, executor seeds);
//! * a skewed Zipf trace against a tight hot-shard threshold actually
//!   exercises [`ShedReason::HotShard`], and those sheds are distinct from
//!   queue-full backpressure;
//! * per-shard telemetry snapshots merge into a fleet view whose counters
//!   equal the ledger.

use bytetransformer::frameworks::admission::{CutPolicy, ShedReason};
use bytetransformer::frameworks::server::{run_open_loop, Outcome, ServeConfig};
use bytetransformer::frameworks::serving::{poisson_arrivals, TimedRequest};
use bytetransformer::frameworks::shard::{run_sharded_open_loop, shard_seed, RoutePolicy, ShardConfig};
use bytetransformer::obs::names;
use bytetransformer::prelude::*;
use bytetransformer::varlen::paged::PagedLayout;

/// Synthetic batch cost, same shape as `serve_stress.rs`: fixed launch
/// overhead plus linear token cost — deterministic and fast.
const TOKENS_PER_SEC: f64 = 1.0e6;
const BATCH_OVERHEAD: f64 = 50e-6;

/// Per-shard executor with a seed-mixed noise term so different shards draw
/// different (but deterministic) modeled durations — the sharded analogue
/// of a per-instance clock jitter. `shard_seed` is identity at shard 0, so
/// a 1-shard run with `noise == 0` is the unsharded executor exactly.
fn make_synthetic_exec(shard: usize) -> impl FnMut(&BatchMask) -> f64 {
    let mut state = shard_seed(0x5eed, shard);
    move |mask: &BatchMask| {
        // splitmix64 step, scaled to at most 1µs of jitter.
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let jitter = (z ^ (z >> 31)) as f64 / u64::MAX as f64 * 1e-6;
        BATCH_OVERHEAD + mask.valid_words() as f64 / TOKENS_PER_SEC + jitter
    }
}

fn plain_exec(mask: &BatchMask) -> f64 {
    BATCH_OVERHEAD + mask.valid_words() as f64 / TOKENS_PER_SEC
}

fn serve_config(seq: usize, alpha: f64) -> ServeConfig {
    let mean_tokens = alpha * seq as f64;
    let interval = 8.0 * mean_tokens / TOKENS_PER_SEC;
    ServeConfig {
        policy: CutPolicy::TokenBudget {
            budget_tokens: (TOKENS_PER_SEC * interval).round() as usize,
        },
        queue_capacity: 64,
        deadline: 2.0 * interval,
        max_len: seq,
        chunk_tokens: 0,
    }
}

/// Aggregate arrivals at `load ×` one shard's synthetic capacity.
fn arrivals_at_load(n: usize, load: f64, seq: usize, alpha: f64, seed: u64) -> Vec<TimedRequest> {
    let mean_tokens = alpha * seq as f64;
    let rate = load * TOKENS_PER_SEC / mean_tokens;
    poisson_arrivals(n, rate, LengthDistribution::PaperUniform { alpha }, seq, seed)
}

fn zipf_arrivals(n: usize, rate: f64, seq: usize, seed: u64) -> Vec<TimedRequest> {
    poisson_arrivals(n, rate, LengthDistribution::Zipf { exponent: 1.1 }, seq, seed)
}

#[test]
fn one_shard_is_bit_identical_to_the_unsharded_server() {
    let config = serve_config(256, 0.6);
    for seed in [7u64, 1234, 0xdead_beef] {
        let reqs = arrivals_at_load(1000, 2.0, 256, 0.6, seed);
        let base = run_open_loop(&reqs, &config, plain_exec);
        for route in [
            RoutePolicy::RoundRobin,
            RoutePolicy::JoinShortestQueue,
            RoutePolicy::PowerOfTwo { seed: seed ^ 1 },
        ] {
            let cfg = ShardConfig {
                route,
                ..ShardConfig::new(1, config)
            };
            // With one shard every policy picks shard 0, and the plain
            // executor is seed-free, so the whole report must match bitwise.
            let sharded = run_sharded_open_loop(&reqs, &cfg, |_| plain_exec);
            assert_eq!(
                sharded.outcomes,
                base.outcomes,
                "seed {seed}, route {}: outcome ledgers diverge",
                route.label()
            );
            assert_eq!(sharded.shard_reports[0].batches, base.batches);
            assert_eq!(
                sharded.shard_reports[0].makespan.to_bits(),
                base.makespan.to_bits(),
                "seed {seed}, route {}: virtual clocks diverge",
                route.label()
            );
        }
    }
}

#[test]
fn sharded_accounting_is_exact_and_partitions_the_trace() {
    for (shards, seed) in [(2usize, 11u64), (4, 23), (8, 0xabad_cafe)] {
        // Aggregate load ≈ 2× per shard, so every shard sheds and serves.
        let reqs = arrivals_at_load(500 * shards, 2.0 * shards as f64, 256, 0.6, seed);
        for route in [
            RoutePolicy::RoundRobin,
            RoutePolicy::JoinShortestQueue,
            RoutePolicy::PowerOfTwo { seed },
        ] {
            let cfg = ShardConfig {
                route,
                kv_layout: PagedLayout::new(16, 64 * shards),
                ..ShardConfig::new(shards, serve_config(256, 0.6))
            };
            let report = run_sharded_open_loop(&reqs, &cfg, make_synthetic_exec);
            assert!(
                report.accounting_is_exact_across_shards(),
                "{shards} shards, route {}: ledger does not balance",
                route.label()
            );
            let s = report.summary();
            assert_eq!(s.offered, reqs.len());
            assert!(s.served > 0 && s.shed() > 0, "2× per-shard load both serves and sheds");

            // Per-shard offered counts partition the global trace, and the
            // assignment maps every id to a real shard.
            let per_shard = report.shard_summaries();
            assert_eq!(per_shard.iter().map(|p| p.offered).sum::<usize>(), reqs.len());
            assert_eq!(report.assignment.len(), reqs.len());
            assert!(report.assignment.iter().all(|&a| a < shards));

            // Every id appears exactly once in the global ledger.
            let mut ids: Vec<usize> = report.outcomes.iter().map(|o| o.id).collect();
            ids.sort_unstable();
            assert_eq!(ids, (0..reqs.len()).collect::<Vec<_>>());
        }
    }
}

#[test]
fn sharded_runs_replay_bit_identically_for_a_fixed_seed() {
    let reqs = arrivals_at_load(1200, 6.0, 128, 0.6, 99);
    for route in [
        RoutePolicy::RoundRobin,
        RoutePolicy::JoinShortestQueue,
        RoutePolicy::PowerOfTwo { seed: 4242 },
    ] {
        let cfg = ShardConfig {
            route,
            ..ShardConfig::new(3, serve_config(128, 0.6))
        };
        let a = run_sharded_open_loop(&reqs, &cfg, make_synthetic_exec);
        let b = run_sharded_open_loop(&reqs, &cfg, make_synthetic_exec);
        assert_eq!(a.outcomes, b.outcomes, "route {}", route.label());
        assert_eq!(a.assignment, b.assignment);
        for (ra, rb) in a.shard_reports.iter().zip(&b.shard_reports) {
            assert_eq!(ra.batches, rb.batches);
            assert_eq!(ra.makespan.to_bits(), rb.makespan.to_bits());
        }
    }
}

#[test]
fn skewed_zipf_trace_forces_hot_shard_sheds_with_exact_accounting() {
    // Heavy-tailed lengths at a high rate against a tight per-shard token
    // ceiling: the router must shed at routing time, with the distinct
    // HotShard reason, while the global ledger stays exact.
    // Zipf(1.1) lengths average ≈37 tokens, so 150k req/s is ≈5.5M token/s
    // against 2M token/s of fleet capacity — well past saturation.
    let reqs = zipf_arrivals(1500, 150_000.0, 256, 0x2f2f);
    let cfg = ShardConfig {
        route: RoutePolicy::JoinShortestQueue,
        hot_shard_tokens: 512,
        ..ShardConfig::new(2, serve_config(256, 0.6))
    };
    let report = run_sharded_open_loop(&reqs, &cfg, make_synthetic_exec);
    assert!(report.accounting_is_exact_across_shards());
    let s = report.summary();
    assert!(
        s.shed_hot_shard > 0,
        "a 2048-token ceiling under this trace must fire the hot-shard gate: {s:?}"
    );
    assert!(s.served > 0, "the gate sheds the spill, not the service");

    // Hot-shard sheds are routing-time decisions: zero queue wait, the
    // distinct reason and label, never conflated with queue-full.
    assert_eq!(ShedReason::HotShard.label(), "hot_shard");
    for o in &report.outcomes {
        if let Outcome::Shed {
            reason: ShedReason::HotShard,
            wait,
        } = o.outcome
        {
            assert_eq!(wait, 0.0, "hot-shard sheds never queued anywhere");
        }
    }

    // The per-reason breakdown survives the per-shard split.
    let per_shard = report.shard_summaries();
    assert_eq!(
        per_shard.iter().map(|p| p.shed_hot_shard).sum::<usize>(),
        s.shed_hot_shard
    );
}

#[test]
fn fleet_snapshot_counters_match_the_ledger() {
    let reqs = arrivals_at_load(900, 4.0, 128, 0.6, 17);
    let cfg = ShardConfig::new(3, serve_config(128, 0.6));
    let report = run_sharded_open_loop(&reqs, &cfg, make_synthetic_exec);
    let s = report.summary();
    let snaps = report.shard_snapshots();
    assert_eq!(snaps.len(), 3);
    for (i, snap) in snaps.iter().enumerate() {
        assert_eq!(snap.shard, format!("shard{i}"));
    }
    let fleet = report.fleet_snapshot();
    assert_eq!(fleet.delta(names::SERVE_OFFERED) as usize, s.offered);
    assert_eq!(fleet.delta(names::SERVE_SERVED) as usize, s.served);
    assert_eq!(fleet.delta(names::SERVE_SHED_DEADLINE) as usize, s.shed_deadline);
    assert_eq!(
        fleet.delta(names::SERVE_SHARD_ROUTED) as usize,
        s.offered - s.shed_hot_shard
    );
    let latency = fleet
        .histogram(names::SERVE_LATENCY_US)
        .expect("fleet latency histogram");
    assert_eq!(
        latency.count() as usize,
        s.served,
        "one latency sample per served request"
    );
    let wait = fleet
        .histogram(names::SERVE_QUEUE_WAIT_US)
        .expect("fleet queue-wait histogram");
    assert_eq!(wait.count() as usize, s.served);
}

#[test]
fn more_shards_serve_more_of_an_overloaded_trace() {
    // The scale-out claim in miniature (the full sweep lives in
    // `bench_serve`): a trace that swamps one shard is mostly served by
    // four, because each shard only sees a quarter of the arrivals.
    let reqs = arrivals_at_load(2000, 4.0, 128, 0.6, 31);
    let serve = serve_config(128, 0.6);
    let served_at = |shards: usize| {
        let cfg = ShardConfig::new(shards, serve);
        run_sharded_open_loop(&reqs, &cfg, make_synthetic_exec).summary().served
    };
    let one = served_at(1);
    let four = served_at(4);
    assert!(
        four as f64 >= one as f64 * 2.5,
        "4 shards served {four} vs {one} on one shard — scale-out is broken"
    );
}
