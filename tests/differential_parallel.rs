//! Differential harness for every parallel path in the workspace.
//!
//! Each case runs the same kernel twice — once inside
//! [`rayon::sequential`] (every parallel entry point forced inline, in
//! item order: the single-thread reference) and once on the pooled
//! N-thread path — and insists the outputs are **bitwise identical**
//! (`f32::to_bits`, not an epsilon). That is the strongest statement the
//! pool can make: parallel decomposition must never change what is
//! computed, only who computes it. Any cross-item reduction, scratch
//! aliasing, or store race shows up as a flipped mantissa bit here long
//! before it would trip an `assert_close`.
//!
//! Covered paths: add-bias + residual + LayerNorm (fused and unfused),
//! add-bias + GELU (fused and unfused), row softmax, varlen pack/unpack,
//! blocked SGEMM, and grouped SGEMM (both schedulers) — i.e. every kernel
//! family that fans out over the pool. Shapes are randomized by proptest
//! and pinned at the edges: empty batches, single-token sequences, and
//! single-element tiles.

use bt_gemm::grouped::{grouped_sgemm, GroupedConfig, GroupedProblem, NoEpilogue, NoTransform, Scheduler};
use bt_gemm::{sgemm, GemmSpec};
use bt_kernels::activation::{add_bias_gelu_fused, add_bias_gelu_unfused};
use bt_kernels::layernorm::{add_bias_residual_layernorm_fused, add_bias_residual_layernorm_unfused};
use bt_kernels::softmax::softmax_rows;
use bt_tensor::rng::Xoshiro256StarStar;
use bytetransformer::prelude::*;
use proptest::prelude::*;

/// Widens the pool for this test binary (unless the harness pinned a width
/// via the environment) before anything touches the lazy global — the CI
/// host may have a single CPU, which would otherwise make "pooled" and
/// "sequential" the same path.
fn ensure_pool() {
    static INIT: std::sync::Once = std::sync::Once::new();
    INIT.call_once(|| {
        if std::env::var("BYTE_POOL_THREADS").is_err() {
            std::env::set_var("BYTE_POOL_THREADS", "4");
        }
    });
}

fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    (0..n).map(|_| rng.uniform(-2.0, 2.0)).collect()
}

fn assert_bitwise(label: &str, reference: &[f32], pooled: &[f32]) {
    assert_eq!(reference.len(), pooled.len(), "{label}: output lengths differ");
    for (i, (r, p)) in reference.iter().zip(pooled).enumerate() {
        assert!(
            r.to_bits() == p.to_bits(),
            "{label}[{i}]: sequential {r:?} != pooled {p:?} (bitwise)"
        );
    }
}

/// The harness: one inline reference run, two pooled runs (pooled output
/// must match the reference *and* be stable run-to-run).
fn differential(label: &str, kernel: impl Fn() -> Vec<f32>) {
    ensure_pool();
    let reference = rayon::sequential(&kernel);
    let pooled = kernel();
    assert_bitwise(label, &reference, &pooled);
    let pooled_again = kernel();
    assert_bitwise(label, &pooled, &pooled_again);
}

// --- per-kernel cases -------------------------------------------------------

fn layernorm_case(rows: usize, hidden: usize, seed: u64) {
    let input = rand_vec(rows * hidden, seed);
    let residual = rand_vec(rows * hidden, seed ^ 1);
    let bias = rand_vec(hidden, seed ^ 2);
    let gamma = rand_vec(hidden, seed ^ 3);
    let beta = rand_vec(hidden, seed ^ 4);
    differential(&format!("layernorm_fused {rows}x{hidden}"), || {
        let mut out = input.clone();
        let dev = Device::new();
        add_bias_residual_layernorm_fused(
            &dev, "ln", &mut out, &residual, &bias, &gamma, &beta, 1e-5, rows, hidden,
        );
        out
    });
    differential(&format!("layernorm_unfused {rows}x{hidden}"), || {
        let mut out = input.clone();
        let dev = Device::new();
        add_bias_residual_layernorm_unfused(
            &dev, "ln", &mut out, &residual, &bias, &gamma, &beta, 1e-5, rows, hidden,
        );
        out
    });
}

fn gelu_case(rows: usize, cols: usize, seed: u64) {
    let input = rand_vec(rows * cols, seed);
    let bias = rand_vec(cols, seed ^ 5);
    differential(&format!("gelu_fused {rows}x{cols}"), || {
        let mut data = input.clone();
        let dev = Device::new();
        add_bias_gelu_fused(&dev, "gelu", &mut data, rows, cols, &bias);
        data
    });
    differential(&format!("gelu_unfused {rows}x{cols}"), || {
        let mut data = input.clone();
        let dev = Device::new();
        add_bias_gelu_unfused(&dev, "gelu", &mut data, rows, cols, &bias);
        data
    });
}

fn softmax_case(rows: usize, cols: usize, seed: u64) {
    let input = rand_vec(rows * cols, seed);
    differential(&format!("softmax {rows}x{cols}"), || {
        let mut data = input.clone();
        let dev = Device::new();
        softmax_rows(&dev, &mut data, rows, cols);
        data
    });
}

fn pack_unpack_case(lens: &[usize], max_seq_len: usize, hidden: usize, seed: u64) {
    let mask = BatchMask::from_lens(lens.to_vec(), max_seq_len).unwrap();
    let idx = PackingIndex::from_mask(&mask);
    let padded = Tensor::randn([mask.batch(), max_seq_len, hidden], seed);
    let label = format!("pack/unpack lens={lens:?} hidden={hidden}");
    differential(&format!("{label} (pack)"), || {
        let dev = Device::new();
        idx.pack(&dev, &padded).unwrap().as_slice().to_vec()
    });
    differential(&format!("{label} (roundtrip)"), || {
        let dev = Device::new();
        let packed = idx.pack(&dev, &padded).unwrap();
        idx.unpack(&dev, &packed).unwrap().as_slice().to_vec()
    });
}

fn blocked_gemm_case(m: usize, n: usize, k: usize, seed: u64) {
    let a = rand_vec(m * k, seed);
    let b = rand_vec(k * n, seed ^ 6);
    let c0 = rand_vec(m * n, seed ^ 7);
    differential(&format!("sgemm {m}x{n}x{k}"), || {
        let mut c = c0.clone();
        sgemm(GemmSpec::nn().alpha(1.25).beta(0.5), m, n, k, &a, &b, &mut c);
        c
    });
}

fn grouped_gemm_case(shapes: &[(usize, usize, usize)], seed: u64, scheduler: Scheduler) {
    let a_bufs: Vec<Vec<f32>> = shapes
        .iter()
        .enumerate()
        .map(|(i, &(m, _, k))| rand_vec(m * k, seed ^ (i as u64 * 2 + 10)))
        .collect();
    let b_bufs: Vec<Vec<f32>> = shapes
        .iter()
        .enumerate()
        .map(|(i, &(_, n, k))| rand_vec(k * n, seed ^ (i as u64 * 2 + 11)))
        .collect();
    differential(&format!("grouped_sgemm {shapes:?} {scheduler:?}"), || {
        let problems: Vec<GroupedProblem<'_>> = shapes
            .iter()
            .enumerate()
            .map(|(i, &(m, n, k))| GroupedProblem {
                m,
                n,
                k,
                transb: false,
                alpha: 1.0,
                a: &a_bufs[i],
                b: &b_bufs[i],
            })
            .collect();
        let mut c_bufs: Vec<Vec<f32>> = shapes.iter().map(|&(m, n, _)| vec![0.0; m * n]).collect();
        grouped_sgemm(
            &problems,
            c_bufs.iter_mut().map(|c| c.as_mut_slice()).collect(),
            GroupedConfig {
                num_ctas: 16,
                scheduler,
                ..Default::default()
            },
            &NoEpilogue,
            &NoTransform,
        );
        c_bufs.concat()
    });
}

// --- pinned edge cases ------------------------------------------------------

#[test]
fn empty_batches_bitwise() {
    // rows = 0 / batch = 0: the launch must degenerate to a no-op on both
    // paths without touching the (empty) buffers.
    layernorm_case(0, 8, 1);
    gelu_case(0, 16, 2);
    softmax_case(0, 4, 3);
    blocked_gemm_case(0, 5, 3, 4);
    pack_unpack_case(&[], 4, 8, 5);
    grouped_gemm_case(&[], 6, Scheduler::WarpPrefetch);
}

#[test]
fn all_empty_sequences_bitwise() {
    // A non-empty batch whose every sequence has zero valid tokens.
    pack_unpack_case(&[0, 0, 0], 8, 16, 7);
}

#[test]
fn single_token_sequences_bitwise() {
    pack_unpack_case(&[1, 1, 1], 8, 16, 8);
    pack_unpack_case(&[1, 0, 5, 1], 8, 12, 9);
    layernorm_case(1, 32, 10);
    gelu_case(1, 32, 11);
    softmax_case(1, 1, 12);
    blocked_gemm_case(1, 1, 1, 13);
    grouped_gemm_case(&[(1, 1, 1), (1, 7, 3)], 14, Scheduler::PerTile);
}

// --- randomized shapes ------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn prop_memory_bound_kernels_bitwise(
        rows in 0usize..33,
        cols in 1usize..65,
        seed in 0u64..1_000_000
    ) {
        layernorm_case(rows, cols, seed);
        gelu_case(rows, cols, seed.wrapping_add(1));
        softmax_case(rows, cols, seed.wrapping_add(2));
    }

    #[test]
    fn prop_pack_unpack_bitwise(
        lens in proptest::collection::vec(0usize..13, 1..6),
        hidden in 1usize..17,
        seed in 0u64..1_000_000
    ) {
        let max = lens.iter().copied().max().unwrap_or(0).max(1);
        pack_unpack_case(&lens, max, hidden, seed);
    }

    #[test]
    fn prop_blocked_gemm_bitwise(
        m in 0usize..48,
        n in 1usize..48,
        k in 0usize..40,
        seed in 0u64..1_000_000
    ) {
        blocked_gemm_case(m, n, k, seed);
    }

    #[test]
    fn prop_grouped_gemm_bitwise(
        shapes in proptest::collection::vec((1usize..48, 1usize..48, 1usize..24), 0..5),
        seed in 0u64..1_000_000
    ) {
        grouped_gemm_case(&shapes, seed, Scheduler::WarpPrefetch);
        grouped_gemm_case(&shapes, seed, Scheduler::PerTile);
    }
}
