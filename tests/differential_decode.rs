//! Cross-ISA differential harness for the paged decode path.
//!
//! The block-paged KV cache and batched decode step (`bt_core::paged`) must
//! agree with the two independently implemented references on **every**
//! `BYTE_GEMM_ISA` tier:
//!
//! 1. **Teacher-forcing forward** — [`TransformerDecoder::forward`] over the
//!    whole target at once, the path PR 3 proved against the padded
//!    baseline.
//! 2. **Contiguous incremental cache** — [`DecoderSession`], one private
//!    contiguous cache per sequence.
//! 3. **Paged batched decode** — [`PagedDecoder::step_batch`], many
//!    sessions through one grouped-GEMM pipeline over block-table-indexed
//!    storage.
//!
//! All three run the same weights, so any disagreement beyond the
//! documented contraction-order tolerance (`5e-3`, same bound the
//! incremental-vs-teacher-forcing test documents) is a bug in the cache
//! indirection, the gather, or the grouped problem construction — exactly
//! the layers this PR adds. On top of the per-tier three-way check, each
//! tier's paged output is compared against the scalar tier's: **bitwise**
//! when the tiers share a contraction mode ([`MicroKernel::fused_fma`] —
//! paging adds no ISA-dependent code outside the GEMMs), tolerance
//! otherwise. Block-size invariance is asserted bitwise *per tier*
//! unconditionally: paging is memory layout, never math.
//!
//! Tiers the host lacks are skipped with a logged reason (stderr), never
//! silently: the log always accounts for all tiers.
//!
//! [`MicroKernel::fused_fma`]: bt_gemm::micro::MicroKernel::fused_fma
//! [`DecoderSession`]: bt_core::incremental::DecoderSession
//! [`PagedDecoder::step_batch`]: bt_core::paged::PagedDecoder::step_batch

use bt_core::incremental::DecoderSession;
use bt_core::paged::PagedDecoder;
use bt_gemm::isa::{self, Isa};
use bt_gemm::{active_precision, set_active_precision, Precision};
use bt_tensor::Tensor;
use bt_varlen::paged::{PagedLayout, SessionId};
use bt_varlen::BatchMask;
use bytetransformer::prelude::*;
use std::sync::Mutex;

/// Serializes the tier-flipping harness: the active tier is process-wide.
static ISA_LOCK: Mutex<()> = Mutex::new(());

/// Documented tolerance of the paged/incremental paths vs teacher forcing:
/// the grouped microkernel and the attention loops contract in different
/// orders (same bound `bt_core::incremental` documents).
const TOL: f32 = 5e-3;

fn device() -> Device {
    Device::with_model(CostModel::unit())
}

/// Runs `case` once per available tier, scalar first as the reference, and
/// logs (never silently drops) unavailable tiers. Pins f32 precision so a
/// `BYTE_GEMM_PREC` selection doesn't reroute through the low-precision
/// kernels. Cross-tier outputs are compared bitwise when the tiers share a
/// contraction mode, within [`TOL`] otherwise.
fn decode_differential(label: &str, case: impl Fn() -> Vec<f32>) {
    let _g = ISA_LOCK.lock().unwrap();
    let prev = isa::active_isa();
    let prev_prec = active_precision();
    set_active_precision(Precision::F32);
    let available = isa::available_isas();
    for tier in Isa::ALL {
        if !available.contains(&tier) {
            eprintln!("differential_decode: {label}: skipping {tier} — not supported on this host");
        }
    }
    isa::set_active_isa(Isa::Scalar).unwrap();
    let reference = case();
    let scalar_fused = isa::kernel_for(Isa::Scalar).unwrap().fused_fma;
    for &tier in available.iter().filter(|&&t| t != Isa::Scalar) {
        isa::set_active_isa(tier).unwrap();
        let got = case();
        assert_eq!(reference.len(), got.len(), "{label} [{tier}]: output lengths differ");
        let same = isa::kernel_for(tier).unwrap().fused_fma == scalar_fused;
        for (i, (r, g)) in reference.iter().zip(&got).enumerate() {
            if same {
                assert!(
                    r.to_bits() == g.to_bits(),
                    "{label} [{tier}][{i}]: scalar {r:?} != {tier} {g:?} (bitwise)"
                );
            } else {
                assert!(
                    (r - g).abs() < TOL,
                    "{label} [{tier}][{i}]: scalar {r} vs {tier} {g} exceeds decode tolerance"
                );
            }
        }
    }
    isa::set_active_isa(prev).unwrap();
    set_active_precision(prev_prec);
}

/// Per-tier three-way check: batched paged decode vs contiguous
/// [`DecoderSession`] vs teacher-forcing [`TransformerDecoder::forward`],
/// per token, on every available tier. The paged outputs are also the
/// harness's cross-tier payload, so tier-to-tier drift is bounded too.
#[test]
fn paged_tracks_contiguous_and_teacher_forcing_on_every_tier() {
    let config = BertConfig::tiny();
    let decoder = TransformerDecoder::new_random(config, 2, 7);
    let hidden = config.hidden();
    let steps = 4;
    let mem_lens = [4usize, 3];
    let memories: Vec<Tensor> = mem_lens
        .iter()
        .enumerate()
        .map(|(i, &l)| Tensor::randn([l, hidden], 20 + i as u64))
        .collect();
    let inputs: Vec<Tensor> = (0..memories.len())
        .map(|i| Tensor::randn([steps, hidden], 40 + i as u64))
        .collect();

    decode_differential("three_way_decode", || {
        let dev = device();

        // Reference 1: teacher-forcing forward per sequence (batch of one).
        let full: Vec<Tensor> = memories
            .iter()
            .zip(&inputs)
            .zip(&mem_lens)
            .map(|((mem, inp), &ml)| {
                let tgt_mask = BatchMask::from_lens(vec![steps], steps).unwrap();
                let mem_mask = BatchMask::from_lens(vec![ml], ml).unwrap();
                let tgt = inp.clone().reshape([1, steps, hidden]).unwrap();
                let memory = mem.clone().reshape([1, ml, hidden]).unwrap();
                decoder.forward(&dev, &tgt, &tgt_mask, &memory, &mem_mask).unwrap()
            })
            .collect();

        // Reference 2: contiguous incremental sessions.
        let mut contiguous: Vec<DecoderSession<'_>> = memories
            .iter()
            .map(|m| DecoderSession::new(&decoder, &dev, m))
            .collect();

        // Subject: batched paged decode, all sessions in one step.
        let mut paged = PagedDecoder::new(&decoder, PagedLayout::new(3, 32));
        let ids: Vec<SessionId> = memories.iter().map(|m| paged.open_session(&dev, m)).collect();

        let mut payload = Vec::new();
        for t in 0..steps {
            let mut flat = Vec::with_capacity(ids.len() * hidden);
            for inp in &inputs {
                flat.extend_from_slice(&inp.as_slice()[t * hidden..(t + 1) * hidden]);
            }
            let out = paged.step_batch(&dev, &ids, &flat);
            assert!(out.oom.is_empty(), "pool sized to fit");
            for (s, session) in contiguous.iter_mut().enumerate() {
                let want = session.step(&dev, &inputs[s].as_slice()[t * hidden..(t + 1) * hidden]);
                let got = out.outputs[s].as_ref().expect("no shed");
                for d in 0..hidden {
                    let teacher = full[s].at(&[0, t, d]).unwrap();
                    assert!(
                        (got[d] - want[d]).abs() < TOL,
                        "step {t}, seq {s}, dim {d}: paged {} vs contiguous {}",
                        got[d],
                        want[d]
                    );
                    assert!(
                        (got[d] - teacher).abs() < TOL,
                        "step {t}, seq {s}, dim {d}: paged {} vs teacher-forcing {teacher}",
                        got[d]
                    );
                }
                payload.extend_from_slice(got);
            }
        }
        payload
    });
}

/// Prefill and token-by-token stepping are the same pipeline at different
/// row counts; they must agree tightly on every tier (the only difference
/// is batch composition inside identical grouped launches).
#[test]
fn prefill_equals_stepping_on_every_tier() {
    let config = BertConfig::tiny();
    let decoder = TransformerDecoder::new_random(config, 2, 9);
    let hidden = config.hidden();
    let memory = Tensor::randn([4, hidden], 5);
    let prompt_len = 5;
    let prompt = Tensor::randn([prompt_len, hidden], 6);

    decode_differential("prefill_vs_steps", || {
        let dev = device();
        let mut a = PagedDecoder::new(&decoder, PagedLayout::new(2, 16));
        let sa = a.open_session(&dev, &memory);
        let prefilled = a.prefill(&dev, sa, &prompt).unwrap();

        let mut b = PagedDecoder::new(&decoder, PagedLayout::new(2, 16));
        let sb = b.open_session(&dev, &memory);
        for (i, row) in prompt.as_slice().chunks(hidden).enumerate() {
            let out = b.step_batch(&dev, &[sb], row);
            let got = out.outputs[0].as_ref().unwrap();
            for (d, (&p, &s)) in prefilled[i].iter().zip(got).enumerate() {
                assert!((p - s).abs() < 1e-5, "token {i}, dim {d}: prefill {p} vs step {s}");
            }
        }
        prefilled.into_iter().flatten().collect()
    });
}

/// Block size is memory layout, never math: outputs must be **bitwise**
/// identical across block geometries on every single tier — no tolerance,
/// because within one tier the arithmetic sequence is literally the same.
#[test]
fn block_size_invariance_holds_on_every_tier() {
    let config = BertConfig::tiny();
    let decoder = TransformerDecoder::new_random(config, 2, 11);
    let hidden = config.hidden();
    let memory = Tensor::randn([3, hidden], 8);
    let prompt = Tensor::randn([7, hidden], 9);

    decode_differential("block_size_invariance", || {
        let dev = device();
        let mut outs: Vec<Vec<f32>> = Vec::new();
        for block_tokens in [1usize, 3, 16] {
            let mut d = PagedDecoder::new(&decoder, PagedLayout::new(block_tokens, 64));
            let sid = d.open_session(&dev, &memory);
            let rows = d.prefill(&dev, sid, &prompt).unwrap();
            outs.push(rows.into_iter().flatten().collect());
        }
        for (i, alt) in outs[1..].iter().enumerate() {
            let bits_match = outs[0].iter().zip(alt).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(
                bits_match,
                "block geometry {i} changed the math on {}",
                isa::active_isa()
            );
        }
        outs.swap_remove(0)
    });
}

/// OOM→shed behavior is structural, not numeric, but it must be structural
/// on every tier: a refused append sheds exactly the starved session and
/// leaves survivors' outputs untouched relative to a roomy pool.
#[test]
fn oom_shedding_is_tier_invariant() {
    let config = BertConfig::tiny();
    let decoder = TransformerDecoder::new_random(config, 1, 13);
    let hidden = config.hidden();
    let memory = Tensor::randn([2, hidden], 3);
    let prompt_a = Tensor::randn([3, hidden], 5);
    let prompt_b = Tensor::randn([2, hidden], 6);
    let step_input = Tensor::randn([2, hidden], 7);

    decode_differential("oom_shed", || {
        let dev = device();
        // 3 blocks × 2 tokens: a takes 2 blocks (one slot spare), b takes 1.
        let mut tight = PagedDecoder::new(&decoder, PagedLayout::new(2, 3));
        let a = tight.open_session(&dev, &memory);
        let b = tight.open_session(&dev, &memory);
        tight.prefill(&dev, a, &prompt_a).unwrap();
        tight.prefill(&dev, b, &prompt_b).unwrap();
        let out = tight.step_batch(&dev, &[a, b], step_input.as_slice());
        assert!(out.outputs[0].is_some(), "session with tail-block room proceeds");
        assert!(
            out.outputs[1].is_none(),
            "starved session sheds on {}",
            isa::active_isa()
        );
        assert_eq!(out.oom.len(), 1);

        // Same step with a roomy pool: the survivor's token is bitwise the
        // same — shedding a neighbor must not perturb the batch's math.
        let mut roomy = PagedDecoder::new(&decoder, PagedLayout::new(2, 16));
        let ra = roomy.open_session(&dev, &memory);
        let rb = roomy.open_session(&dev, &memory);
        roomy.prefill(&dev, ra, &prompt_a).unwrap();
        roomy.prefill(&dev, rb, &prompt_b).unwrap();
        let full = roomy.step_batch(&dev, &[ra, rb], step_input.as_slice());
        let starved_out = out.outputs[0].as_ref().unwrap();
        let roomy_out = full.outputs[0].as_ref().unwrap();
        // Grouped launches see different problem sets (1 vs 2 sessions), so
        // scheduling differs but each problem's chain is identical.
        for (d, (s, r)) in starved_out.iter().zip(roomy_out).enumerate() {
            assert!(
                s.to_bits() == r.to_bits(),
                "dim {d}: shed neighbor perturbed survivor ({s} vs {r})"
            );
        }
        starved_out.clone()
    });
}
