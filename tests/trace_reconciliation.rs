//! Request-trace reconciliation: the per-request timelines reconstructed
//! from the drained telemetry must agree **exactly** with the serving
//! ledger — same outcome for every offered request, and phase durations
//! that reproduce the ledger's queue-wait and end-to-end latency to within
//! nanosecond rounding of the virtual clock.
//!
//! Every test drains the same process-global telemetry state, so they
//! serialize on one lock; under the `obs-off` feature the recording tests
//! early-return and the disabled-path test still proves the ledger is
//! unaffected.

use bytetransformer::frameworks::admission::CutPolicy;
use bytetransformer::frameworks::server::{run_open_loop, Outcome, ServeConfig};
use bytetransformer::frameworks::serving::{poisson_arrivals, TimedRequest};
use bytetransformer::obs;
use bytetransformer::obs::trace::{reconstruct, RequestTrace, TraceOutcome};
use bytetransformer::prelude::*;
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock};

const TOKENS_PER_SEC: f64 = 1.0e6;
const BATCH_OVERHEAD: f64 = 50e-6;

fn synthetic_exec(mask: &BatchMask) -> f64 {
    BATCH_OVERHEAD + mask.valid_words() as f64 / TOKENS_PER_SEC
}

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn stress_config(seq: usize, alpha: f64, chunk_tokens: usize) -> ServeConfig {
    let mean_tokens = alpha * seq as f64;
    let interval = 8.0 * mean_tokens / TOKENS_PER_SEC;
    ServeConfig {
        policy: CutPolicy::TokenBudget {
            budget_tokens: (TOKENS_PER_SEC * interval).round() as usize,
        },
        queue_capacity: 48,
        deadline: 2.0 * interval,
        max_len: seq,
        chunk_tokens,
    }
}

fn arrivals_at_double_load(n: usize, seq: usize, alpha: f64, seed: u64) -> Vec<TimedRequest> {
    let rate = 2.0 * TOKENS_PER_SEC / (alpha * seq as f64);
    poisson_arrivals(n, rate, LengthDistribution::PaperUniform { alpha }, seq, seed)
}

/// Reconstructed timelines keyed by request id; asserts the id space is
/// exactly `0..offered` with no duplicates.
fn timelines_by_id(traces: Vec<RequestTrace>, offered: usize) -> BTreeMap<usize, RequestTrace> {
    let mut by_id = BTreeMap::new();
    for t in traces {
        let id = t.id.request_id();
        assert!(id < offered, "trace for unknown request id {id}");
        assert!(by_id.insert(id, t).is_none(), "request {id} reconstructed twice");
    }
    assert_eq!(by_id.len(), offered, "every offered request must reconstruct");
    by_id
}

/// |`ns` − `secs`·1e9| ≤ 2 ns: the trace stamps `round(t·1e9)` per event, so
/// a difference of two rounded stamps can drift a nanosecond either way
/// from the rounded difference the ledger would produce.
fn matches_ns(ns: u64, secs: f64, what: &str, id: usize) {
    let diff = (ns as f64 - secs * 1e9).abs();
    assert!(
        diff <= 2.0,
        "request {id}: trace {what} {ns} ns vs ledger {:.1} ns (diff {diff:.1})",
        secs * 1e9
    );
}

/// The acceptance run: seeded 2× overload, whole-batch and chunked. EVERY
/// offered request reconstructs to a complete causal timeline whose
/// outcome matches the ledger and whose phase durations sum to the
/// ledger's end-to-end latency.
#[test]
fn every_offered_request_reconstructs_exactly_at_double_load() {
    if !obs::compiled() {
        return;
    }
    let _guard = lock();
    for (seed, chunk) in [(7u64, 0usize), (1234, 0), (0xdead_beef, 96)] {
        let config = stress_config(256, 0.6, chunk);
        let requests = arrivals_at_double_load(600, 256, 0.6, seed);
        obs::set_enabled(true);
        let _ = obs::drain();
        let report = run_open_loop(&requests, &config, synthetic_exec);
        let profile = obs::drain();
        assert_eq!(profile.dropped, 0, "seed {seed}: the run must fit the rings");

        let s = report.summary();
        assert!(s.accounting_is_exact());
        assert!(
            s.served > 0 && s.shed() > 0,
            "seed {seed}: 2x load must both serve and shed"
        );
        let by_id = timelines_by_id(reconstruct(&profile), s.offered);

        for o in &report.outcomes {
            let t = &by_id[&o.id];
            let phases = t
                .phases()
                .unwrap_or_else(|| panic!("request {} has no terminal phase breakdown", o.id));
            let total = t.total_ns().expect("terminal timeline has a total");
            assert_eq!(
                phases.queue_wait_ns + phases.compute_ns + phases.egress_ns,
                total,
                "request {}: phases must telescope to the end-to-end total",
                o.id
            );
            match o.outcome {
                Outcome::Served { queue_wait, latency } => {
                    assert_eq!(t.outcome(), TraceOutcome::Done, "request {}", o.id);
                    matches_ns(total, latency, "total latency", o.id);
                    matches_ns(phases.queue_wait_ns, queue_wait, "queue wait", o.id);
                }
                Outcome::Shed { reason, wait } => {
                    assert_eq!(
                        t.outcome(),
                        TraceOutcome::Shed(reason.label().to_string()),
                        "request {}",
                        o.id
                    );
                    matches_ns(total, wait, "shed wait", o.id);
                }
            }
        }

        // The deadline filter the CLI exposes agrees with the ledger.
        let missed_in_ledger: usize = report
            .outcomes
            .iter()
            .filter(|o| {
                matches!(
                    o.outcome,
                    Outcome::Shed {
                        reason: bytetransformer::frameworks::admission::ShedReason::DeadlineExpired
                            | bytetransformer::frameworks::admission::ShedReason::CancelledMidRequest,
                        ..
                    }
                )
            })
            .count();
        let missed_in_traces = by_id.values().filter(|t| t.deadline_missed()).count();
        assert_eq!(missed_in_traces, missed_in_ledger, "seed {seed}");
    }
}

/// With recording disabled the same run yields a bit-identical ledger (the
/// tagged marks never touch the virtual clock) and an empty reconstruction.
#[test]
fn disabled_tracing_leaves_the_ledger_bit_identical() {
    let _guard = lock();
    let config = stress_config(256, 0.6, 0);
    let requests = arrivals_at_double_load(400, 256, 0.6, 99);

    obs::set_enabled(false);
    let _ = obs::drain();
    let off = run_open_loop(&requests, &config, synthetic_exec);
    let silent = obs::drain();
    assert!(
        reconstruct(&silent).is_empty(),
        "disabled recording must reconstruct no timelines"
    );
    assert!(off.summary().accounting_is_exact());

    obs::set_enabled(true);
    let _ = obs::drain();
    let on = run_open_loop(&requests, &config, synthetic_exec);
    let _ = obs::drain();
    obs::set_enabled(false);
    assert_eq!(on.outcomes, off.outcomes, "tracing must not perturb outcomes");
    assert_eq!(on.makespan.to_bits(), off.makespan.to_bits());

    if obs::compiled() {
        // Sanity: the enabled twin really did record.
        obs::set_enabled(true);
        let _ = obs::drain();
        let again = run_open_loop(&requests, &config, synthetic_exec);
        let profile = obs::drain();
        obs::set_enabled(false);
        assert_eq!(timelines_by_id(reconstruct(&profile), 400).len(), 400);
        assert_eq!(again.outcomes, off.outcomes);
    }
}
