//! Cross-ISA differential harness: every SIMD dispatch tier must compute
//! exactly what the scalar tier computes.
//!
//! For each available tier this runs blocked, grouped (both schedulers,
//! contiguous + strided), batched GEMM and both fused-MHA paths on
//! randomized shapes — including `MR`/`NR` remainder edges, `k = 0`,
//! empty groups and single-token sequences — and compares against the
//! forced-`scalar` run:
//!
//! * **Bitwise** (`f32::to_bits`) when the tiers share a contraction mode
//!   ([`MicroKernel::fused_fma`]): every stored element is one
//!   multiply-accumulate chain in `p`-order regardless of tile geometry,
//!   so identical rounding means identical bits. On an FMA-native build
//!   (ours: `target-cpu=native`) this is the path that runs — the strongest
//!   statement the dispatch layer can make, mirroring the PR 2
//!   pooled-vs-sequential harness.
//! * Otherwise (scalar tier compiled without hardware FMA, intrinsic tiers
//!   fusing by definition) the per-step rounding differs, and the
//!   comparison degrades to a `k`-scaled relative tolerance: a fused chain
//!   and an unfused chain of `k` steps can each accumulate up to `k/2` ULP
//!   of drift, so exact equality is unachievable *by design*, not by bug.
//!
//! Tiers the host lacks are **skipped with a logged reason** (stderr), not
//! silently: the suite's log always accounts for all three tiers.
//!
//! [`MicroKernel::fused_fma`]: bt_gemm::micro::MicroKernel::fused_fma

use bt_core::attention::{fused_grouped_attention, fused_short_attention, DEFAULT_SPLIT_SEQ_LEN};
use bt_gemm::batched::{batched_sgemm, BatchedArgs};
use bt_gemm::grouped::{
    grouped_sgemm, grouped_sgemm_strided, GroupedConfig, GroupedProblem, NoEpilogue, NoTransform, Scheduler,
    StridedOutput,
};
use bt_gemm::isa::{self, Isa};
use bt_gemm::{sgemm, sgemm_epilogue, GemmSpec};
use bt_tensor::rng::Xoshiro256StarStar;
use bt_tensor::Tensor;
use bt_varlen::{BatchMask, PackingIndex};
use bytetransformer::prelude::*;
use std::sync::Mutex;

/// Serializes the tier-flipping harness: the active tier is process-wide.
static ISA_LOCK: Mutex<()> = Mutex::new(());

fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect()
}

/// Largest `k` (accumulation-chain length) a case touches — scales the
/// tolerance used when contraction modes differ.
fn assert_matches(label: &str, tier: Isa, reference: &[f32], got: &[f32], same_contraction: bool, max_k: usize) {
    assert_eq!(reference.len(), got.len(), "{label} [{tier}]: output lengths differ");
    if same_contraction {
        for (i, (r, g)) in reference.iter().zip(got).enumerate() {
            assert!(
                r.to_bits() == g.to_bits(),
                "{label} [{tier}][{i}]: scalar {r:?} != {tier} {g:?} (bitwise)"
            );
        }
    } else {
        // Mixed contraction: bounded relative drift, one rounding per step.
        let tol = (max_k.max(1) as f32) * f32::EPSILON * 4.0;
        for (i, (r, g)) in reference.iter().zip(got).enumerate() {
            let denom = r.abs().max(g.abs()).max(1.0);
            assert!(
                (r - g).abs() <= tol * denom,
                "{label} [{tier}][{i}]: scalar {r} vs {tier} {g} exceeds mixed-contraction tolerance"
            );
        }
    }
}

/// The harness: runs `case` once per tier, scalar first as the reference,
/// and logs (never silently drops) unavailable tiers.
fn differential(label: &str, max_k: usize, case: impl Fn() -> Vec<f32>) {
    let _g = ISA_LOCK.lock().unwrap();
    let prev = isa::active_isa();
    let available = isa::available_isas();
    for tier in Isa::ALL {
        if !available.contains(&tier) {
            eprintln!("differential_simd: {label}: skipping {tier} — not supported on this host");
        }
    }
    isa::set_active_isa(Isa::Scalar).unwrap();
    let reference = case();
    let scalar_fused = isa::kernel_for(Isa::Scalar).unwrap().fused_fma;
    for &tier in available.iter().filter(|&&t| t != Isa::Scalar) {
        isa::set_active_isa(tier).unwrap();
        let got = case();
        let same = isa::kernel_for(tier).unwrap().fused_fma == scalar_fused;
        assert_matches(label, tier, &reference, &got, same, max_k);
    }
    isa::set_active_isa(prev).unwrap();
}

// --- blocked ---------------------------------------------------------------

#[test]
fn blocked_sgemm_all_tiers() {
    // Shapes straddling every remainder class of every tile geometry in the
    // family (8×8, 8×16, 16×16), plus k = 0 and single elements.
    for &(m, n, k) in &[
        (1usize, 1usize, 1usize),
        (7, 9, 5),
        (8, 16, 8),
        (16, 16, 16),
        (17, 15, 33),
        (15, 17, 1),
        (33, 65, 127),
        (9, 31, 0), // degenerate k: C = beta·C, kernel-independent
        (100, 30, 300),
    ] {
        for (ti, &(transa, transb)) in [(false, false), (false, true), (true, false), (true, true)]
            .iter()
            .enumerate()
        {
            differential(&format!("sgemm {m}x{n}x{k} t{ti}"), k, || {
                let a = rand_vec(m * k, 1 + ti as u64);
                let b = rand_vec(k * n, 2 + ti as u64);
                let mut c = rand_vec(m * n, 3);
                let spec = GemmSpec {
                    transa,
                    transb,
                    alpha: 1.25,
                    beta: -0.5,
                };
                sgemm(spec, m, n, k, &a, &b, &mut c);
                c
            });
        }
    }
}

#[test]
fn blocked_epilogue_all_tiers() {
    let (m, n, k) = (23, 19, 41);
    differential("sgemm_epilogue gelu-ish", k, || {
        let a = rand_vec(m * k, 7);
        let b = rand_vec(k * n, 8);
        let bias: Vec<f32> = (0..n).map(|j| j as f32 * 0.1 - 0.5).collect();
        let mut c = vec![0.0f32; m * n];
        sgemm_epilogue(GemmSpec::nn(), m, n, k, &a, &b, &mut c, &|j, x| (x + bias[j]).tanh());
        c
    });
}

// --- grouped ---------------------------------------------------------------

fn grouped_case(shapes: &[(usize, usize, usize)], transb: bool, scheduler: Scheduler) -> Vec<f32> {
    let a_bufs: Vec<Vec<f32>> = shapes
        .iter()
        .enumerate()
        .map(|(i, &(m, _, k))| rand_vec(m * k, i as u64 * 2 + 1))
        .collect();
    let b_bufs: Vec<Vec<f32>> = shapes
        .iter()
        .enumerate()
        .map(|(i, &(_, n, k))| rand_vec(k * n, i as u64 * 2 + 2))
        .collect();
    let problems: Vec<GroupedProblem<'_>> = shapes
        .iter()
        .enumerate()
        .map(|(i, &(m, n, k))| GroupedProblem {
            m,
            n,
            k,
            transb,
            alpha: 1.0,
            a: &a_bufs[i],
            b: &b_bufs[i],
        })
        .collect();
    let mut cs: Vec<Vec<f32>> = shapes.iter().map(|&(m, n, _)| vec![0.0; m * n]).collect();
    grouped_sgemm(
        &problems,
        cs.iter_mut().map(|c| c.as_mut_slice()).collect(),
        GroupedConfig {
            scheduler,
            num_ctas: 13,
            ..Default::default()
        },
        &NoEpilogue,
        &NoTransform,
    );
    cs.concat()
}

#[test]
fn grouped_sgemm_all_tiers() {
    // Mixed shapes: remainder edges, an empty group (m = 0), a k = 0 group,
    // a single-element group.
    let shapes: &[(usize, usize, usize)] = &[
        (17, 23, 31),
        (64, 64, 64),
        (0, 10, 8), // empty group: contributes no tiles
        (1, 1, 1),
        (5, 7, 0), // k = 0 group: all-zero output
        (130, 5, 70),
    ];
    let max_k = 70;
    for scheduler in [Scheduler::PerTile, Scheduler::WarpPrefetch] {
        for transb in [false, true] {
            differential(&format!("grouped {scheduler:?} transb={transb}"), max_k, || {
                grouped_case(shapes, transb, scheduler)
            });
        }
    }
}

#[test]
fn grouped_empty_problem_list_all_tiers() {
    differential("grouped empty list", 1, || {
        grouped_sgemm(&[], vec![], GroupedConfig::default(), &NoEpilogue, &NoTransform);
        vec![]
    });
}

#[test]
fn grouped_strided_all_tiers() {
    // Two problems packed side by side in one [m, 3+5] buffer — the
    // fused-MHA context-store pattern.
    differential("grouped strided", 16, || {
        let a0 = rand_vec(70 * 16, 1);
        let b0 = rand_vec(16 * 3, 2);
        let a1 = rand_vec(70 * 16, 3);
        let b1 = rand_vec(16 * 5, 4);
        let problems = vec![
            GroupedProblem {
                m: 70,
                n: 3,
                k: 16,
                transb: false,
                alpha: 1.0,
                a: &a0,
                b: &b0,
            },
            GroupedProblem {
                m: 70,
                n: 5,
                k: 16,
                transb: false,
                alpha: 2.0,
                a: &a1,
                b: &b1,
            },
        ];
        let placements = vec![StridedOutput { offset: 0, ld: 8 }, StridedOutput { offset: 3, ld: 8 }];
        let mut out = vec![0.0f32; 70 * 8];
        grouped_sgemm_strided(
            &problems,
            &mut out,
            &placements,
            GroupedConfig::default(),
            &NoEpilogue,
            &NoTransform,
        );
        out
    });
}

// --- batched ---------------------------------------------------------------

#[test]
fn batched_sgemm_all_tiers() {
    for &(batch, m, n, k) in &[(1usize, 9usize, 17usize, 25usize), (5, 13, 17, 19), (3, 8, 8, 0)] {
        differential(&format!("batched {batch}x{m}x{n}x{k}"), k, || {
            let args = BatchedArgs::dense(batch, m, n, k);
            let a = rand_vec(batch * m * k, 31);
            let b = rand_vec(batch * k * n, 32);
            let mut c = vec![0.0f32; batch * m * n];
            batched_sgemm(GemmSpec::nt().alpha(0.5), args, &a, &b, &mut c);
            c
        });
    }
}

// --- fused MHA -------------------------------------------------------------

/// Random packed `[heads, valid, head]` Q/K/V for the given lengths.
fn packed_qkv(lens: &[usize], max_seq: usize, heads: usize, head: usize, seed: u64) -> (PackingIndex, [Tensor; 3]) {
    let mask = BatchMask::from_lens(lens.to_vec(), max_seq).unwrap();
    let idx = PackingIndex::from_mask(&mask);
    let valid = idx.valid_words();
    let qkv =
        [0u64, 1, 2].map(|i| Tensor::from_vec(rand_vec(heads * valid * head, seed + i), [heads, valid, head]).unwrap());
    (idx, qkv)
}

#[test]
fn fused_short_mha_all_tiers() {
    // Variable lengths incl. a single-token sequence and an empty batch mix.
    differential("fused_short_attention", 64, || {
        let (idx, [q, k, v]) = packed_qkv(&[5, 1, 12, 7], 12, 3, 16, 41);
        let dev = Device::new();
        let out = fused_short_attention(&dev, &q, &k, &v, &idx, DEFAULT_SPLIT_SEQ_LEN);
        out.as_slice().to_vec()
    });
}

#[test]
fn fused_grouped_mha_all_tiers() {
    for scheduler in [Scheduler::PerTile, Scheduler::WarpPrefetch] {
        differential(&format!("fused_grouped_attention {scheduler:?}"), 96, || {
            let (idx, [q, k, v]) = packed_qkv(&[33, 1, 96, 17], 96, 2, 32, 43);
            let dev = Device::new();
            let out = fused_grouped_attention(&dev, &q, &k, &v, &idx, scheduler);
            out.as_slice().to_vec()
        });
    }
}

#[test]
fn fused_grouped_mha_single_token_sequences_all_tiers() {
    differential("fused_grouped_attention 1-token", 8, || {
        let (idx, [q, k, v]) = packed_qkv(&[1, 1, 1], 1, 2, 8, 47);
        let dev = Device::new();
        let out = fused_grouped_attention(&dev, &q, &k, &v, &idx, Scheduler::WarpPrefetch);
        out.as_slice().to_vec()
    });
}
