//! Cross-ISA differential harness: every SIMD dispatch tier must compute
//! exactly what the scalar tier computes.
//!
//! For each available tier this runs blocked, grouped (both schedulers,
//! contiguous + strided), batched GEMM and both fused-MHA paths on
//! randomized shapes — including `MR`/`NR` remainder edges, `k = 0`,
//! empty groups and single-token sequences — and compares against the
//! forced-`scalar` run:
//!
//! * **Bitwise** (`f32::to_bits`) when the tiers share a contraction mode
//!   ([`MicroKernel::fused_fma`]): every stored element is one
//!   multiply-accumulate chain in `p`-order regardless of tile geometry,
//!   so identical rounding means identical bits. On an FMA-native build
//!   (ours: `target-cpu=native`) this is the path that runs — the strongest
//!   statement the dispatch layer can make, mirroring the PR 2
//!   pooled-vs-sequential harness.
//! * Otherwise (scalar tier compiled without hardware FMA, intrinsic tiers
//!   fusing by definition) the per-step rounding differs, and the
//!   comparison degrades to a `k`-scaled relative tolerance: a fused chain
//!   and an unfused chain of `k` steps can each accumulate up to `k/2` ULP
//!   of drift, so exact equality is unachievable *by design*, not by bug.
//!
//! Tiers the host lacks are **skipped with a logged reason** (stderr), not
//! silently: the suite's log always accounts for all three tiers.
//!
//! [`MicroKernel::fused_fma`]: bt_gemm::micro::MicroKernel::fused_fma

use bt_core::attention::{fused_grouped_attention, fused_short_attention, DEFAULT_SPLIT_SEQ_LEN};
use bt_gemm::batched::{batched_sgemm, BatchedArgs};
use bt_gemm::grouped::{
    grouped_sgemm, grouped_sgemm_strided, GroupedConfig, GroupedProblem, NoEpilogue, NoTransform, Scheduler,
    StridedOutput,
};
use bt_gemm::isa::{self, Isa};
use bt_gemm::lowp::{lowp_impl, lowp_impl_isas};
use bt_gemm::{
    active_precision, dot_error_bound, int8_dot_error_bound, set_active_precision, sgemm, sgemm_epilogue, GemmSpec,
    Precision,
};
use bt_tensor::rng::Xoshiro256StarStar;
use bt_tensor::Tensor;
use bt_varlen::{BatchMask, PackingIndex};
use bytetransformer::prelude::*;
use std::sync::Mutex;

/// Serializes the tier-flipping harness: the active tier is process-wide.
static ISA_LOCK: Mutex<()> = Mutex::new(());

fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect()
}

/// Largest `k` (accumulation-chain length) a case touches — scales the
/// tolerance used when contraction modes differ.
fn assert_matches(label: &str, tier: Isa, reference: &[f32], got: &[f32], same_contraction: bool, max_k: usize) {
    assert_eq!(reference.len(), got.len(), "{label} [{tier}]: output lengths differ");
    if same_contraction {
        for (i, (r, g)) in reference.iter().zip(got).enumerate() {
            assert!(
                r.to_bits() == g.to_bits(),
                "{label} [{tier}][{i}]: scalar {r:?} != {tier} {g:?} (bitwise)"
            );
        }
    } else {
        // Mixed contraction: bounded relative drift, one rounding per step.
        let tol = (max_k.max(1) as f32) * f32::EPSILON * 4.0;
        for (i, (r, g)) in reference.iter().zip(got).enumerate() {
            let denom = r.abs().max(g.abs()).max(1.0);
            assert!(
                (r - g).abs() <= tol * denom,
                "{label} [{tier}][{i}]: scalar {r} vs {tier} {g} exceeds mixed-contraction tolerance"
            );
        }
    }
}

/// The harness: runs `case` once per tier, scalar first as the reference,
/// and logs (never silently drops) unavailable tiers.
fn differential(label: &str, max_k: usize, case: impl Fn() -> Vec<f32>) {
    let _g = ISA_LOCK.lock().unwrap();
    let prev = isa::active_isa();
    // This harness asserts the *f32 family's* bitwise contract; the
    // precision axis has its own chain-aware section below. Pin f32 so a
    // `BYTE_GEMM_PREC` env selection (the check.sh matrix) doesn't reroute
    // these cases through the tolerance-only low-precision kernels.
    let prev_prec = active_precision();
    set_active_precision(Precision::F32);
    let available = isa::available_isas();
    for tier in Isa::ALL {
        if !available.contains(&tier) {
            eprintln!("differential_simd: {label}: skipping {tier} — not supported on this host");
        }
    }
    isa::set_active_isa(Isa::Scalar).unwrap();
    let reference = case();
    let scalar_fused = isa::kernel_for(Isa::Scalar).unwrap().fused_fma;
    for &tier in available.iter().filter(|&&t| t != Isa::Scalar) {
        isa::set_active_isa(tier).unwrap();
        let got = case();
        let same = isa::kernel_for(tier).unwrap().fused_fma == scalar_fused;
        assert_matches(label, tier, &reference, &got, same, max_k);
    }
    isa::set_active_isa(prev).unwrap();
    set_active_precision(prev_prec);
}

// --- blocked ---------------------------------------------------------------

#[test]
fn blocked_sgemm_all_tiers() {
    // Shapes straddling every remainder class of every tile geometry in the
    // family (8×8, 8×16, 16×16), plus k = 0 and single elements.
    for &(m, n, k) in &[
        (1usize, 1usize, 1usize),
        (7, 9, 5),
        (8, 16, 8),
        (16, 16, 16),
        (17, 15, 33),
        (15, 17, 1),
        (33, 65, 127),
        (9, 31, 0), // degenerate k: C = beta·C, kernel-independent
        (100, 30, 300),
    ] {
        for (ti, &(transa, transb)) in [(false, false), (false, true), (true, false), (true, true)]
            .iter()
            .enumerate()
        {
            differential(&format!("sgemm {m}x{n}x{k} t{ti}"), k, || {
                let a = rand_vec(m * k, 1 + ti as u64);
                let b = rand_vec(k * n, 2 + ti as u64);
                let mut c = rand_vec(m * n, 3);
                let spec = GemmSpec {
                    transa,
                    transb,
                    alpha: 1.25,
                    beta: -0.5,
                };
                sgemm(spec, m, n, k, &a, &b, &mut c);
                c
            });
        }
    }
}

#[test]
fn blocked_epilogue_all_tiers() {
    let (m, n, k) = (23, 19, 41);
    differential("sgemm_epilogue gelu-ish", k, || {
        let a = rand_vec(m * k, 7);
        let b = rand_vec(k * n, 8);
        let bias: Vec<f32> = (0..n).map(|j| j as f32 * 0.1 - 0.5).collect();
        let mut c = vec![0.0f32; m * n];
        sgemm_epilogue(GemmSpec::nn(), m, n, k, &a, &b, &mut c, &|j, x| (x + bias[j]).tanh());
        c
    });
}

// --- grouped ---------------------------------------------------------------

fn grouped_case(shapes: &[(usize, usize, usize)], transb: bool, scheduler: Scheduler) -> Vec<f32> {
    let a_bufs: Vec<Vec<f32>> = shapes
        .iter()
        .enumerate()
        .map(|(i, &(m, _, k))| rand_vec(m * k, i as u64 * 2 + 1))
        .collect();
    let b_bufs: Vec<Vec<f32>> = shapes
        .iter()
        .enumerate()
        .map(|(i, &(_, n, k))| rand_vec(k * n, i as u64 * 2 + 2))
        .collect();
    let problems: Vec<GroupedProblem<'_>> = shapes
        .iter()
        .enumerate()
        .map(|(i, &(m, n, k))| GroupedProblem {
            m,
            n,
            k,
            transb,
            alpha: 1.0,
            a: &a_bufs[i],
            b: &b_bufs[i],
        })
        .collect();
    let mut cs: Vec<Vec<f32>> = shapes.iter().map(|&(m, n, _)| vec![0.0; m * n]).collect();
    grouped_sgemm(
        &problems,
        cs.iter_mut().map(|c| c.as_mut_slice()).collect(),
        GroupedConfig {
            scheduler,
            num_ctas: 13,
            ..Default::default()
        },
        &NoEpilogue,
        &NoTransform,
    );
    cs.concat()
}

#[test]
fn grouped_sgemm_all_tiers() {
    // Mixed shapes: remainder edges, an empty group (m = 0), a k = 0 group,
    // a single-element group.
    let shapes: &[(usize, usize, usize)] = &[
        (17, 23, 31),
        (64, 64, 64),
        (0, 10, 8), // empty group: contributes no tiles
        (1, 1, 1),
        (5, 7, 0), // k = 0 group: all-zero output
        (130, 5, 70),
    ];
    let max_k = 70;
    for scheduler in [Scheduler::PerTile, Scheduler::WarpPrefetch] {
        for transb in [false, true] {
            differential(&format!("grouped {scheduler:?} transb={transb}"), max_k, || {
                grouped_case(shapes, transb, scheduler)
            });
        }
    }
}

#[test]
fn grouped_empty_problem_list_all_tiers() {
    differential("grouped empty list", 1, || {
        grouped_sgemm(&[], vec![], GroupedConfig::default(), &NoEpilogue, &NoTransform);
        vec![]
    });
}

#[test]
fn grouped_strided_all_tiers() {
    // Two problems packed side by side in one [m, 3+5] buffer — the
    // fused-MHA context-store pattern.
    differential("grouped strided", 16, || {
        let a0 = rand_vec(70 * 16, 1);
        let b0 = rand_vec(16 * 3, 2);
        let a1 = rand_vec(70 * 16, 3);
        let b1 = rand_vec(16 * 5, 4);
        let problems = vec![
            GroupedProblem {
                m: 70,
                n: 3,
                k: 16,
                transb: false,
                alpha: 1.0,
                a: &a0,
                b: &b0,
            },
            GroupedProblem {
                m: 70,
                n: 5,
                k: 16,
                transb: false,
                alpha: 2.0,
                a: &a1,
                b: &b1,
            },
        ];
        let placements = vec![StridedOutput { offset: 0, ld: 8 }, StridedOutput { offset: 3, ld: 8 }];
        let mut out = vec![0.0f32; 70 * 8];
        grouped_sgemm_strided(
            &problems,
            &mut out,
            &placements,
            GroupedConfig::default(),
            &NoEpilogue,
            &NoTransform,
        );
        out
    });
}

// --- batched ---------------------------------------------------------------

#[test]
fn batched_sgemm_all_tiers() {
    for &(batch, m, n, k) in &[(1usize, 9usize, 17usize, 25usize), (5, 13, 17, 19), (3, 8, 8, 0)] {
        differential(&format!("batched {batch}x{m}x{n}x{k}"), k, || {
            let args = BatchedArgs::dense(batch, m, n, k);
            let a = rand_vec(batch * m * k, 31);
            let b = rand_vec(batch * k * n, 32);
            let mut c = vec![0.0f32; batch * m * n];
            batched_sgemm(GemmSpec::nt().alpha(0.5), args, &a, &b, &mut c);
            c
        });
    }
}

// --- fused MHA -------------------------------------------------------------

/// Random packed `[heads, valid, head]` Q/K/V for the given lengths.
fn packed_qkv(lens: &[usize], max_seq: usize, heads: usize, head: usize, seed: u64) -> (PackingIndex, [Tensor; 3]) {
    let mask = BatchMask::from_lens(lens.to_vec(), max_seq).unwrap();
    let idx = PackingIndex::from_mask(&mask);
    let valid = idx.valid_words();
    let qkv =
        [0u64, 1, 2].map(|i| Tensor::from_vec(rand_vec(heads * valid * head, seed + i), [heads, valid, head]).unwrap());
    (idx, qkv)
}

#[test]
fn fused_short_mha_all_tiers() {
    // Variable lengths incl. a single-token sequence and an empty batch mix.
    differential("fused_short_attention", 64, || {
        let (idx, [q, k, v]) = packed_qkv(&[5, 1, 12, 7], 12, 3, 16, 41);
        let dev = Device::new();
        let out = fused_short_attention(&dev, &q, &k, &v, &idx, DEFAULT_SPLIT_SEQ_LEN);
        out.as_slice().to_vec()
    });
}

#[test]
fn fused_grouped_mha_all_tiers() {
    for scheduler in [Scheduler::PerTile, Scheduler::WarpPrefetch] {
        differential(&format!("fused_grouped_attention {scheduler:?}"), 96, || {
            let (idx, [q, k, v]) = packed_qkv(&[33, 1, 96, 17], 96, 2, 32, 43);
            let dev = Device::new();
            let out = fused_grouped_attention(&dev, &q, &k, &v, &idx, scheduler);
            out.as_slice().to_vec()
        });
    }
}

// --- precision × ISA -------------------------------------------------------
//
// The low-precision family trades bitwise equality for *documented* error
// bounds (`dot_error_bound` / `int8_dot_error_bound`): every precision × ISA
// implementation must track the f64 reference product within its bound, and
// implementations sharing a contraction [`Chain`] must still agree bitwise
// (int8 is exact in i32, so all its tiers agree; the AVX512 f16 tier
// accumulates in f16 and is tolerance-only by design).
//
// [`Chain`]: bt_gemm::Chain

const LOW_PRECS: [Precision; 3] = [Precision::F16, Precision::Bf16, Precision::Int8];

/// Implementations of `prec` this host can actually dispatch to, with the
/// missing ones logged (never silently dropped) — every precision × ISA
/// combination is accounted for in the suite's log.
fn lowp_tiers_logged(prec: Precision, what: &str) -> Vec<Isa> {
    let impls: Vec<Isa> = lowp_impl_isas(prec)
        .into_iter()
        .filter(|t| isa::available_isas().contains(t))
        .collect();
    for tier in Isa::ALL {
        if !impls.contains(&tier) {
            eprintln!(
                "differential_simd: {what}: no {prec}×{tier} implementation on this host — \
                 resolution degrades it to a narrower tier (asserted by prec_dispatch)"
            );
        }
    }
    impls
}

/// Asserts every element of `got` is within the precision's documented
/// error bound of the f64 reference of `alpha * A·B` (A `m×k`, B `k×n`,
/// both row-major).
#[allow(clippy::too_many_arguments)] // the GEMM operand set is the point
fn assert_tracks_f64(
    label: &str,
    prec: Precision,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    got: &[f32],
) {
    assert_eq!(got.len(), m * n, "{label}: output length");
    // Int8 scales are deterministic from the operands (|max|/127 per A row
    // and per B column; 1.0 for all-zero vectors).
    let sa: Vec<f32> = (0..m)
        .map(|i| bt_gemm::lowp::int8_scale(a[i * k..(i + 1) * k].iter().fold(0.0f32, |x, &v| x.max(v.abs()))))
        .collect();
    let sb: Vec<f32> = (0..n)
        .map(|j| bt_gemm::lowp::int8_scale((0..k).fold(0.0f32, |x, p| x.max(b[p * n + j].abs()))))
        .collect();
    for i in 0..m {
        for j in 0..n {
            let a_row = &a[i * k..(i + 1) * k];
            let b_col: Vec<f32> = (0..k).map(|p| b[p * n + j]).collect();
            let exact: f64 = a_row.iter().zip(&b_col).map(|(&x, &y)| x as f64 * y as f64).sum();
            let sum_abs: f64 = a_row
                .iter()
                .zip(&b_col)
                .map(|(&x, &y)| (x as f64 * y as f64).abs())
                .sum();
            let bound = match prec {
                Precision::Int8 => int8_dot_error_bound(a_row, &b_col, sa[i], sb[j]),
                _ => dot_error_bound(prec, k, sum_abs),
            } * (alpha.abs() as f64).max(1.0);
            let got_ij = got[i * n + j] as f64;
            let want = alpha as f64 * exact;
            assert!(
                (got_ij - want).abs() <= bound,
                "{label}: c[{i},{j}] = {got_ij}, reference {want}, documented bound {bound}"
            );
        }
    }
}

#[test]
fn lowp_blocked_every_precision_and_tier_tracks_reference() {
    let _g = ISA_LOCK.lock().unwrap();
    let (prev_isa, prev_prec) = (isa::active_isa(), active_precision());
    // Remainder edges of every lowp tile geometry (8×8, 16×16, 16×32),
    // depths crossing the int8 k-step groups (2 and 4) and odd against
    // both, plus k = 0 and a 1-token row.
    let shapes: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (7, 9, 5),
        (17, 15, 33),
        (16, 32, 64),
        (33, 65, 127),
        (9, 31, 0),
        (1, 7, 16),
    ];
    let alpha = 1.25f32;
    for prec in LOW_PRECS {
        let impls = lowp_tiers_logged(prec, "blocked");
        set_active_precision(prec);
        let scalar_chain = lowp_impl(prec, Isa::Scalar).unwrap().chain;
        for &(m, n, k) in shapes {
            let a = rand_vec(m * k, 0x51 + k as u64);
            let b = rand_vec(k * n, 0x52 + n as u64);
            let run = |tier: Isa| {
                isa::set_active_isa(tier).unwrap();
                let mut c = vec![f32::NAN; m * n];
                sgemm(GemmSpec::nn().alpha(alpha), m, n, k, &a, &b, &mut c);
                c
            };
            let reference = run(Isa::Scalar);
            assert_tracks_f64(
                &format!("{prec}/scalar {m}x{n}x{k}"),
                prec,
                m,
                n,
                k,
                alpha,
                &a,
                &b,
                &reference,
            );
            for &tier in impls.iter().filter(|&&t| t != Isa::Scalar) {
                let got = run(tier);
                assert_tracks_f64(
                    &format!("{prec}/{tier} {m}x{n}x{k}"),
                    prec,
                    m,
                    n,
                    k,
                    alpha,
                    &a,
                    &b,
                    &got,
                );
                if lowp_impl(prec, tier).unwrap().chain == scalar_chain {
                    for (i, (r, g)) in reference.iter().zip(&got).enumerate() {
                        assert!(
                            r.to_bits() == g.to_bits(),
                            "{prec} {m}x{n}x{k} [{i}]: equal chains must agree bitwise: scalar {r:?} != {tier} {g:?}"
                        );
                    }
                }
            }
        }
    }
    isa::set_active_isa(prev_isa).unwrap();
    set_active_precision(prev_prec);
}

#[test]
fn lowp_grouped_every_precision_empty_and_single_token() {
    let _g = ISA_LOCK.lock().unwrap();
    let (prev_isa, prev_prec) = (isa::active_isa(), active_precision());
    // Mixed grouped shapes per precision: an empty group, a k = 0 group,
    // 1-token sequences, and remainder-edge tiles.
    let shapes: &[(usize, usize, usize)] = &[(17, 23, 31), (0, 10, 8), (1, 1, 1), (5, 7, 0), (1, 64, 32), (40, 5, 70)];
    let a_bufs: Vec<Vec<f32>> = shapes
        .iter()
        .enumerate()
        .map(|(i, &(m, _, k))| rand_vec(m * k, i as u64 * 2 + 61))
        .collect();
    let b_bufs: Vec<Vec<f32>> = shapes
        .iter()
        .enumerate()
        .map(|(i, &(_, n, k))| rand_vec(k * n, i as u64 * 2 + 62))
        .collect();
    for prec in LOW_PRECS {
        let impls = lowp_tiers_logged(prec, "grouped");
        set_active_precision(prec);
        let scalar_chain = lowp_impl(prec, Isa::Scalar).unwrap().chain;
        for scheduler in [Scheduler::PerTile, Scheduler::WarpPrefetch] {
            let run = |tier: Isa| {
                isa::set_active_isa(tier).unwrap();
                let problems: Vec<GroupedProblem<'_>> = shapes
                    .iter()
                    .enumerate()
                    .map(|(i, &(m, n, k))| GroupedProblem {
                        m,
                        n,
                        k,
                        transb: false,
                        alpha: 1.0,
                        a: &a_bufs[i],
                        b: &b_bufs[i],
                    })
                    .collect();
                let mut cs: Vec<Vec<f32>> = shapes.iter().map(|&(m, n, _)| vec![0.0; m * n]).collect();
                grouped_sgemm(
                    &problems,
                    cs.iter_mut().map(|c| c.as_mut_slice()).collect(),
                    GroupedConfig {
                        scheduler,
                        num_ctas: 13,
                        ..Default::default()
                    },
                    &NoEpilogue,
                    &NoTransform,
                );
                cs
            };
            let reference = run(Isa::Scalar);
            for (i, &(m, n, k)) in shapes.iter().enumerate() {
                assert_tracks_f64(
                    &format!("grouped {prec}/scalar #{i}"),
                    prec,
                    m,
                    n,
                    k,
                    1.0,
                    &a_bufs[i],
                    &b_bufs[i],
                    &reference[i],
                );
            }
            for &tier in impls.iter().filter(|&&t| t != Isa::Scalar) {
                let got = run(tier);
                for (i, &(m, n, k)) in shapes.iter().enumerate() {
                    assert_tracks_f64(
                        &format!("grouped {prec}/{tier} #{i} {scheduler:?}"),
                        prec,
                        m,
                        n,
                        k,
                        1.0,
                        &a_bufs[i],
                        &b_bufs[i],
                        &got[i],
                    );
                    if lowp_impl(prec, tier).unwrap().chain == scalar_chain {
                        for (e, (r, g)) in reference[i].iter().zip(&got[i]).enumerate() {
                            assert!(
                                r.to_bits() == g.to_bits(),
                                "grouped {prec} #{i} [{e}]: equal chains must agree bitwise ({scheduler:?})"
                            );
                        }
                    }
                }
            }
        }
    }
    isa::set_active_isa(prev_isa).unwrap();
    set_active_precision(prev_prec);
}

#[test]
fn lowp_fused_mha_every_precision_stays_close_to_f32() {
    // End-to-end fused attention under each precision: softmax renormalizes
    // the logits, so documented per-dot bounds don't compose tightly — this
    // asserts an empirical envelope (several × the observed drift) against
    // the f32 run, per precision, on the widest available tier and scalar.
    let _g = ISA_LOCK.lock().unwrap();
    let (prev_isa, prev_prec) = (isa::active_isa(), active_precision());
    let (idx, [q, k, v]) = packed_qkv(&[33, 1, 96, 17], 96, 2, 32, 53);
    let dev = Device::new();
    set_active_precision(Precision::F32);
    let reference: Vec<f32> = fused_grouped_attention(&dev, &q, &k, &v, &idx, Scheduler::WarpPrefetch)
        .as_slice()
        .to_vec();
    for (prec, envelope) in [
        (Precision::F16, 0.02f32),
        (Precision::Bf16, 0.1),
        (Precision::Int8, 0.1),
    ] {
        set_active_precision(prec);
        for tier in [Isa::Scalar, *lowp_tiers_logged(prec, "fused MHA").last().unwrap()] {
            isa::set_active_isa(tier).unwrap();
            let got = fused_grouped_attention(&dev, &q, &k, &v, &idx, Scheduler::WarpPrefetch);
            let worst = reference
                .iter()
                .zip(got.as_slice())
                .map(|(r, g)| (r - g).abs())
                .fold(0.0f32, f32::max);
            assert!(
                worst <= envelope,
                "fused MHA {prec}/{tier}: max drift {worst} exceeds the {envelope} envelope"
            );
        }
    }
    isa::set_active_isa(prev_isa).unwrap();
    set_active_precision(prev_prec);
}

#[test]
fn fused_grouped_mha_single_token_sequences_all_tiers() {
    differential("fused_grouped_attention 1-token", 8, || {
        let (idx, [q, k, v]) = packed_qkv(&[1, 1, 1], 1, 2, 8, 47);
        let dev = Device::new();
        let out = fused_grouped_attention(&dev, &q, &k, &v, &idx, Scheduler::WarpPrefetch);
        out.as_slice().to_vec()
    });
}
