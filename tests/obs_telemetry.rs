//! End-to-end telemetry: the `bt-obs` layer, wired through the pool, the
//! GEMMs, fused MHA, and the serving loop, must produce a profile whose
//! spans reconcile with the `Device` execution trace and whose pool
//! counters prove real multi-worker scheduling happened.
//!
//! Every test drains the same process-global telemetry state, so they
//! serialize on one lock and assert on **deltas** (counters are cumulative
//! across drains).

use bytetransformer::frameworks::profiled::serve_profiled;
use bytetransformer::obs;
use bytetransformer::prelude::*;
use std::sync::{Mutex, Once, OnceLock};

/// Pool width must be set before the pool's lazy init; the CI host may
/// expose a single CPU, and the steal/park assertions need real workers.
fn setup() -> std::sync::MutexGuard<'static, ()> {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        if std::env::var("BYTE_POOL_THREADS").is_err() {
            std::env::set_var("BYTE_POOL_THREADS", "4");
        }
        let _ = rayon::current_num_threads(); // force pool init at width 4
    });
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    obs::set_enabled(true);
    let _ = obs::drain(); // start each test from a clean event stream
    guard
}

fn counter_of(profile: &bytetransformer::obs::profile::Profile, name: &str) -> u64 {
    profile.counters.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
}

fn forward_once(seq: usize) -> (Device, BatchMask) {
    let config = BertConfig::tiny();
    let mask = LengthDistribution::PaperUniform { alpha: 0.6 }.sample_mask(4, seq, 42);
    let model = BertModel::new_random(config, 1, 7);
    let mut input = Tensor::randn([4, mask.max_seq_len(), config.hidden()], 3);
    for (b, &len) in mask.seq_lens().iter().enumerate() {
        for s in len..mask.max_seq_len() {
            for h in 0..config.hidden() {
                input.set(&[b, s, h], 0.0).expect("in range");
            }
        }
    }
    let dev = Device::new();
    model.forward(&dev, &input, &mask, OptLevel::FusedMha).expect("valid");
    (dev, mask)
}

#[test]
fn forward_spans_reconcile_with_device_trace() {
    if !obs::compiled() {
        return;
    }
    let _guard = setup();
    // Warm-up: first use pays one-time telemetry init (label interning,
    // ring registration) inside the trace's wall timer but outside the
    // span; measure a second forward so the two clocks cover the same work.
    let _ = forward_once(32);
    let _ = obs::drain();
    let (dev, _mask) = forward_once(32);
    let profile = obs::drain();
    assert_eq!(profile.dropped, 0, "one tiny forward must not saturate the ring");

    // Every traced kernel launch emitted an obs span under the same name:
    // per name, counts must match exactly and the obs wall time must cover
    // at least the in-kernel wall time the trace recorded.
    let trace = dev.trace();
    let totals = profile.span_totals();
    let mut by_name: std::collections::BTreeMap<&str, (u64, f64)> = std::collections::BTreeMap::new();
    for r in &trace {
        let e = by_name.entry(r.name.as_str()).or_default();
        e.0 += 1;
        e.1 += r.wall.as_secs_f64();
    }
    assert!(!by_name.is_empty());
    for (name, (launches, wall_secs)) in by_name {
        let (count, total_ns) = totals
            .get(name)
            .copied()
            .unwrap_or_else(|| panic!("kernel {name} has no obs span"));
        assert_eq!(count, launches, "span count for {name}");
        let obs_secs = total_ns as f64 / 1e9;
        // The span sits just inside the trace's wall timer, so the two
        // measurements must agree up to per-launch bookkeeping noise (a
        // loaded single-CPU CI host can stall either clock for a while,
        // hence the generous slack — the exact invariant is the count).
        assert!(
            (obs_secs - wall_secs).abs() < 10e-3 * launches as f64,
            "span {name}: obs {obs_secs}s vs traced wall {wall_secs}s"
        );
    }

    // The span tree nests pool fan-outs under the kernels that ran them
    // (a width-1 pool runs parallel_for inline, without a fan-out span).
    let tree = profile.render_tree();
    if rayon::current_num_threads() >= 2 {
        assert!(tree.contains("pool.parallel_for"));
    }
    assert!(tree.contains("mha.fused.short"));
}

#[test]
fn pool_counters_show_multi_worker_scheduling() {
    if !obs::compiled() {
        return;
    }
    let _guard = setup();
    if rayon::current_num_threads() < 2 {
        // check.sh's BYTE_POOL_THREADS=1 pass: a width-1 pool has no
        // siblings to steal from, so there is nothing to assert here.
        return;
    }
    // External launches only reach the shared injector; steals happen when
    // a *worker* pushes sub-tasks to its own deque and siblings take them.
    // Run forwards from inside a pool task until a steal shows up
    // (work-stealing is probabilistic; bound the retries).
    let mut steals = 0u64;
    let mut parks = 0u64;
    let mut launches = 0u64;
    for _ in 0..200 {
        rayon::scope(|s| {
            s.spawn(|| {
                let _ = forward_once(32);
            });
        });
        let profile = obs::drain();
        for (name, v) in &profile.counters {
            if name.starts_with("pool.worker") && name.ends_with(".steals") {
                steals += v;
            }
            if name.starts_with("pool.") && name.ends_with(".parks") {
                parks += v;
            }
            if name.starts_with("pool.") && name.ends_with(".launches") {
                launches += v;
            }
        }
        if steals > 0 && parks > 0 {
            break;
        }
    }
    assert!(launches > 0, "parallel_for launches must be counted");
    assert!(steals > 0, "multi-worker pool must record deque steals");
    assert!(parks > 0, "idle workers must record parks");
}

#[test]
fn long_sequences_take_the_grouped_path() {
    if !obs::compiled() {
        return;
    }
    let _guard = setup();
    let before = obs::drain();
    let _ = forward_once(512);
    let after = obs::drain();
    // Counters are cumulative: assert on the delta across the forward.
    let d = |name: &str| counter_of(&after, name) - counter_of(&before, name);
    assert!(d("mha.path.long") > 0, "seq 512 must take the grouped MHA path");
    assert!(d("mha.grouped.problems") > 0);
    assert!(d("gemm.grouped.scheduler_visits") > 0);
    assert!(
        after
            .counters
            .iter()
            .any(|(n, v)| n.starts_with("gemm.grouped.tiles.") && *v > 0),
        "grouped GEMM must count tiles for the active ISA tier"
    );
}

#[test]
fn serving_records_latency_and_error_telemetry() {
    if !obs::compiled() {
        return;
    }
    let _guard = setup();
    let model = BertModel::new_random(BertConfig::tiny(), 1, 42);
    // TurboTransformer rejects seq > 512, so a 600-token request fails
    // while the short one succeeds — both must appear in the profile.
    let fw = SimFramework::new(FrameworkKind::TurboTransformer, model);
    let device = fw.device(CostModel::unit());
    let requests: Vec<_> = [20usize, 600]
        .iter()
        .enumerate()
        .map(|(id, &len)| bytetransformer::frameworks::serving::TimedRequest {
            id,
            len,
            arrival: id as f64 * 1e-4,
        })
        .collect();
    let report = serve_profiled(&fw, &device, &requests, 1, 0.0, 9);
    let profile = obs::drain();

    assert_eq!(report.batches, 2);
    assert_eq!(report.errors, 1);
    assert!(report.requests[0].ok && !report.requests[1].ok);
    let totals = profile.span_totals();
    assert_eq!(totals.get("serving.batch").map(|t| t.0), Some(2));
    assert_eq!(totals.get("serving.batch.forward").map(|t| t.0), Some(2));
    assert_eq!(
        totals.get("serving.request.error").map(|t| t.0),
        Some(1),
        "the failed batch must record a terminal error span"
    );
    assert!(profile.histograms.iter().any(|h| h.name == "serving.batch.occupancy"));
}

#[test]
fn disabling_telemetry_stops_recording() {
    if !obs::compiled() {
        return;
    }
    let _guard = setup();
    obs::set_enabled(false);
    let _ = forward_once(32);
    obs::set_enabled(true);
    let profile = obs::drain();
    assert!(
        profile.events.is_empty(),
        "no spans may be recorded while telemetry is disabled"
    );
}
