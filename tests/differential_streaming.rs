//! Chunked-vs-whole differential suite for the streaming pipeline.
//!
//! The `bt_core::chunked` stages claim that feeding an input in chunks is a
//! pure *scheduling* decision: every packed row is computed independently of
//! which other rows share its launch, so the chunked outputs must be
//! **bitwise** identical to the whole-input outputs — not "close", identical.
//! This suite holds each stage to that claim on **every** `BYTE_GEMM_ISA`
//! tier the host supports, invariant across chunk sizes 1 / 3 / 64:
//!
//! * [`ChunkedPrefill`] vs [`PagedDecoder::prefill`] of the whole prompt,
//! * [`ChunkedEmbeddings`] vs the packed embedding front-end,
//! * [`ChunkedEncoder`] (sub-batches of whole sequences) vs one batch.
//!
//! Within a tier every comparison is bitwise unconditionally — chunking never
//! changes the arithmetic chain. Across tiers the whole-input outputs are the
//! harness payload, compared bitwise when the tiers share a contraction mode
//! ([`MicroKernel::fused_fma`]) and within the documented `5e-3` tolerance
//! otherwise — the same discipline as `tests/differential_decode.rs`. Tiers
//! the host lacks are skipped with a logged reason, never silently.
//!
//! On top of the equivalences, each stage's explicit save/restore contract is
//! property-tested: interrupt a stream at a random point, snapshot, resume a
//! fresh stage from the snapshot, and the remaining outputs must be bitwise
//! what the uninterrupted stage produces.
//!
//! `env_chunk_tokens_prefill_matches_whole` reads `BYTE_CHUNK_TOKENS`, so
//! `scripts/check.sh` can sweep the chunk-size × ISA matrix externally.
//!
//! [`MicroKernel::fused_fma`]: bt_gemm::micro::MicroKernel::fused_fma
//! [`PagedDecoder::prefill`]: bt_core::paged::PagedDecoder::prefill

use bt_core::chunked::{chunk_spans, row_chunk, ChunkedEmbeddings, ChunkedEncoder, ChunkedPrefill, ChunkedStage};
use bt_core::embeddings::{embed_packed, EmbeddingWeights};
use bt_core::paged::PagedDecoder;
use bt_gemm::isa::{self, Isa};
use bt_gemm::{active_precision, set_active_precision, Precision};
use bt_tensor::rng::Xoshiro256StarStar;
use bt_tensor::Tensor;
use bt_varlen::paged::PagedLayout;
use bytetransformer::prelude::*;
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes the tier-flipping harness: the active tier is process-wide.
static ISA_LOCK: Mutex<()> = Mutex::new(());

/// Cross-tier tolerance when contraction orders differ (same bound the
/// decode differential suite documents). Within a tier chunking is always
/// bitwise; this only bounds scalar-vs-SIMD drift of the payload.
const TOL: f32 = 5e-3;

/// The ISSUE's chunk-size matrix: single token, ragged small, larger than
/// any test input (one chunk — must degenerate to the whole path).
const CHUNK_SIZES: [usize; 3] = [1, 3, 64];

fn device() -> Device {
    Device::with_model(CostModel::unit())
}

fn bits(rows: &[Vec<f32>]) -> Vec<u32> {
    rows.iter().flatten().map(|x| x.to_bits()).collect()
}

/// Runs `case` once per available tier, scalar first as the reference, and
/// logs (never silently drops) unavailable tiers. Pins f32 precision so a
/// `BYTE_GEMM_PREC` selection doesn't reroute through the low-precision
/// kernels. `case` asserts chunked == whole bitwise internally and returns
/// the whole-input outputs as the cross-tier payload.
fn streaming_differential(label: &str, case: impl Fn() -> Vec<f32>) {
    let _g = ISA_LOCK.lock().unwrap();
    let prev = isa::active_isa();
    let prev_prec = active_precision();
    set_active_precision(Precision::F32);
    let available = isa::available_isas();
    for tier in Isa::ALL {
        if !available.contains(&tier) {
            eprintln!("differential_streaming: {label}: skipping {tier} — not supported on this host");
        }
    }
    isa::set_active_isa(Isa::Scalar).unwrap();
    let reference = case();
    let scalar_fused = isa::kernel_for(Isa::Scalar).unwrap().fused_fma;
    for &tier in available.iter().filter(|&&t| t != Isa::Scalar) {
        isa::set_active_isa(tier).unwrap();
        let got = case();
        assert_eq!(reference.len(), got.len(), "{label} [{tier}]: payload lengths differ");
        let same = isa::kernel_for(tier).unwrap().fused_fma == scalar_fused;
        for (i, (r, g)) in reference.iter().zip(&got).enumerate() {
            if same {
                assert!(
                    r.to_bits() == g.to_bits(),
                    "{label} [{tier}][{i}]: scalar {r:?} != {tier} {g:?} (bitwise)"
                );
            } else {
                assert!(
                    (r - g).abs() < TOL,
                    "{label} [{tier}][{i}]: scalar {r} vs {tier} {g} exceeds tolerance"
                );
            }
        }
    }
    isa::set_active_isa(prev).unwrap();
    set_active_precision(prev_prec);
}

/// Chunked causal prefill vs one whole-prompt prefill, per tier: bitwise at
/// every chunk size, including a ragged last chunk (7 % 3 != 0) and the
/// oversized chunk that degenerates to the whole path.
#[test]
fn chunked_prefill_matches_whole_bitwise_on_every_tier() {
    let config = BertConfig::tiny();
    let decoder = TransformerDecoder::new_random(config, 2, 17);
    let hidden = config.hidden();
    let memory = Tensor::randn([3, hidden], 5);
    let prompt = Tensor::randn([7, hidden], 9);
    let layout = PagedLayout::new(4, 64);

    streaming_differential("chunked_prefill", || {
        let dev = device();
        let mut whole = PagedDecoder::new(&decoder, layout);
        let sid = whole.open_session(&dev, &memory);
        let reference = whole.prefill(&dev, sid, &prompt).unwrap();

        for chunk_tokens in CHUNK_SIZES {
            let mut stage = ChunkedPrefill::new(&dev, &decoder, layout, memory.clone());
            let spans = chunk_spans(prompt.dims()[0], chunk_tokens);
            let mut outs: Vec<Vec<f32>> = Vec::new();
            for (i, &(start, len)) in spans.iter().enumerate() {
                outs.extend(stage.transform(row_chunk(&prompt, start, len), i + 1 == spans.len()));
            }
            assert_eq!(stage.tokens_ingested(), prompt.dims()[0]);
            assert_eq!(
                bits(&outs),
                bits(&reference),
                "chunk_tokens={chunk_tokens} diverged from whole prefill on {}",
                isa::active_isa()
            );
        }
        reference.into_iter().flatten().collect()
    });
}

/// Chunked embeddings vs the packed front-end, per tier: the stage carries
/// the position offset in its state, so every chunk size must reproduce the
/// packed layout's position arithmetic bit for bit.
#[test]
fn chunked_embeddings_match_packed_bitwise_on_every_tier() {
    let config = BertConfig::tiny();
    let w = EmbeddingWeights::new_random(&config, 50, 16, 3);
    let len = 7usize;
    let mut rng = Xoshiro256StarStar::seed_from_u64(11);
    let ids: Vec<u32> = (0..len).map(|_| rng.below(50) as u32).collect();
    let segments: Vec<u32> = (0..len).map(|_| rng.below(2) as u32).collect();

    streaming_differential("chunked_embeddings", || {
        let dev = device();
        let mask = BatchMask::from_lens(vec![len], len).unwrap();
        let idx = PackingIndex::from_mask(&mask);
        let reference = embed_packed(&dev, &ids, &segments, &idx, &w).unwrap();

        for chunk_tokens in CHUNK_SIZES {
            let mut stage = ChunkedEmbeddings::new(&dev, &w);
            let mut out: Vec<f32> = Vec::new();
            let spans = chunk_spans(len, chunk_tokens);
            for (i, &(start, n)) in spans.iter().enumerate() {
                let t = stage.transform(
                    (ids[start..start + n].to_vec(), segments[start..start + n].to_vec()),
                    i + 1 == spans.len(),
                );
                out.extend_from_slice(t.as_slice());
            }
            assert_eq!(stage.position(), len);
            let a: Vec<u32> = out.iter().map(|x| x.to_bits()).collect();
            let b: Vec<u32> = reference.as_slice().iter().map(|x| x.to_bits()).collect();
            assert_eq!(
                a,
                b,
                "chunk_tokens={chunk_tokens} diverged from embed_packed on {}",
                isa::active_isa()
            );
        }
        reference.as_slice().to_vec()
    });
}

/// Builds a zero-padded `[batch, max, hidden]` batch from packed per-sequence
/// rows (padding rows zeroed so whole and sub-batch runs see identical data).
fn padded_batch(seqs: &[Vec<f32>], hidden: usize) -> (Tensor, BatchMask) {
    let lens: Vec<usize> = seqs.iter().map(|s| s.len() / hidden).collect();
    let max = lens.iter().copied().max().unwrap_or(0).max(1);
    let mask = BatchMask::from_lens(lens, max).unwrap();
    let mut data = vec![0.0f32; seqs.len() * max * hidden];
    for (b, s) in seqs.iter().enumerate() {
        data[b * max * hidden..b * max * hidden + s.len()].copy_from_slice(s);
    }
    let t = Tensor::from_vec(data, [seqs.len(), max, hidden]).expect("shape consistent");
    (t, mask)
}

/// Valid (unpadded) output rows of a `[batch, max, hidden]` tensor, as bits.
fn valid_bits(t: &Tensor, mask: &BatchMask) -> Vec<u32> {
    let hidden = t.dims()[2];
    let max = t.dims()[1];
    let mut out = Vec::new();
    for (b, &len) in mask.seq_lens().iter().enumerate() {
        let o = b * max * hidden;
        out.extend(t.as_slice()[o..o + len * hidden].iter().map(|x| x.to_bits()));
    }
    out
}

/// Chunked encoder (streaming whole sequences in sub-batches) vs one batch,
/// per tier: sub-batch boundaries land mid-batch at every chunk size, and
/// the padded geometry differs between the whole batch (max 7) and the
/// sub-batches (their own max) — the packed math must not notice either.
#[test]
fn chunked_encoder_matches_whole_batch_bitwise_on_every_tier() {
    let config = BertConfig::tiny();
    let model = BertModel::new_random(config, 2, 42);
    let hidden = config.hidden();
    let lens = [5usize, 2, 7, 1];
    let seqs: Vec<Vec<f32>> = lens
        .iter()
        .enumerate()
        .map(|(i, &l)| Tensor::randn([l, hidden], 13 + i as u64).as_slice().to_vec())
        .collect();

    streaming_differential("chunked_encoder", || {
        let dev = device();
        let (input, mask) = padded_batch(&seqs, hidden);
        let whole = model.forward(&dev, &input, &mask, OptLevel::FusedMha).unwrap();
        let reference = valid_bits(&whole, &mask);

        // Chunk sizes count *sequences* here: the encoder's streaming unit.
        for chunk_seqs in CHUNK_SIZES {
            let mut stage = ChunkedEncoder::new(&dev, &model, OptLevel::FusedMha);
            let spans = chunk_spans(seqs.len(), chunk_seqs);
            let mut streamed: Vec<u32> = Vec::new();
            for (i, &(start, n)) in spans.iter().enumerate() {
                let (sub, sub_mask) = padded_batch(&seqs[start..start + n], hidden);
                let out = stage.transform((sub, sub_mask.clone()), i + 1 == spans.len());
                streamed.extend(valid_bits(&out, &sub_mask));
            }
            assert_eq!(stage.sequences_done(), seqs.len());
            assert_eq!(
                streamed,
                reference,
                "chunk_seqs={chunk_seqs} diverged from the whole batch on {}",
                isa::active_isa()
            );
        }
        reference.iter().map(|b| f32::from_bits(*b)).collect()
    });
}

/// Reads `BYTE_CHUNK_TOKENS` (the serving knob) and proves prefill at that
/// chunk size is bitwise the whole-prompt prefill on the *active* tier —
/// `scripts/check.sh` sweeps this test across its chunk × `BYTE_GEMM_ISA`
/// matrix. Unset defaults to 3 so the test always exercises a real split.
#[test]
fn env_chunk_tokens_prefill_matches_whole() {
    let _g = ISA_LOCK.lock().unwrap();
    let prev_prec = active_precision();
    set_active_precision(Precision::F32);
    let chunk_tokens = bytetransformer::varlen::chunk_tokens_from_env().unwrap_or(3);
    eprintln!(
        "differential_streaming: BYTE_CHUNK_TOKENS -> chunk_tokens={chunk_tokens} on {}",
        isa::active_isa()
    );

    let config = BertConfig::tiny();
    let decoder = TransformerDecoder::new_random(config, 2, 29);
    let dev = device();
    let memory = Tensor::randn([2, config.hidden()], 4);
    let prompt = Tensor::randn([9, config.hidden()], 8);
    let layout = PagedLayout::new(4, 64);

    let mut whole = PagedDecoder::new(&decoder, layout);
    let sid = whole.open_session(&dev, &memory);
    let reference = whole.prefill(&dev, sid, &prompt).unwrap();

    let mut stage = ChunkedPrefill::new(&dev, &decoder, layout, memory);
    let spans = chunk_spans(prompt.dims()[0], chunk_tokens);
    let mut outs: Vec<Vec<f32>> = Vec::new();
    for (i, &(start, len)) in spans.iter().enumerate() {
        outs.extend(stage.transform(row_chunk(&prompt, start, len), i + 1 == spans.len()));
    }
    assert_eq!(
        bits(&outs),
        bits(&reference),
        "BYTE_CHUNK_TOKENS={chunk_tokens} diverged from whole prefill"
    );
    set_active_precision(prev_prec);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Save/restore is exact for the prefill stage: interrupt at a random
    /// split, snapshot, resume a *fresh* stage from the snapshot, and the
    /// tail outputs must be bitwise the uninterrupted stage's.
    #[test]
    fn prop_prefill_state_roundtrip_is_bitwise(
        len in 2usize..9,
        split_pick in 0usize..1000,
        seed in 0u64..1000,
    ) {
        let _g = ISA_LOCK.lock().unwrap();
        let split = 1 + split_pick % (len - 1);
        let config = BertConfig::tiny();
        let decoder = TransformerDecoder::new_random(config, 1, 23);
        let dev = device();
        let memory = Tensor::randn([2, config.hidden()], seed);
        let prompt = Tensor::randn([len, config.hidden()], seed + 1);
        let layout = PagedLayout::new(4, 64);

        let mut base = ChunkedPrefill::new(&dev, &decoder, layout, memory.clone());
        let mut base_out = base.transform(row_chunk(&prompt, 0, split), false);
        base_out.extend(base.transform(row_chunk(&prompt, split, len - split), true));

        let mut first = ChunkedPrefill::new(&dev, &decoder, layout, memory.clone());
        let mut out = first.transform(row_chunk(&prompt, 0, split), false);
        let snap = first.state();
        drop(first);
        let mut resumed = ChunkedPrefill::new(&dev, &decoder, layout, memory).with_state(&snap);
        prop_assert_eq!(resumed.tokens_ingested(), split);
        out.extend(resumed.transform(row_chunk(&prompt, split, len - split), true));

        prop_assert_eq!(bits(&out), bits(&base_out));
        prop_assert_eq!(resumed.state(), base.state());
    }

    /// Save/restore is exact for the embeddings stage: the state is the
    /// position offset, and a restored stage must continue the position
    /// sequence (and therefore the output bits) exactly.
    #[test]
    fn prop_embeddings_state_roundtrip_is_bitwise(
        len in 2usize..12,
        split_pick in 0usize..1000,
        seed in 0u64..1000,
    ) {
        let _g = ISA_LOCK.lock().unwrap();
        let split = 1 + split_pick % (len - 1);
        let config = BertConfig::tiny();
        let w = EmbeddingWeights::new_random(&config, 50, 16, 3);
        let dev = device();
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let ids: Vec<u32> = (0..len).map(|_| rng.below(50) as u32).collect();
        let segs: Vec<u32> = (0..len).map(|_| rng.below(2) as u32).collect();
        let feed = |stage: &mut ChunkedEmbeddings<'_>, r: std::ops::Range<usize>, last: bool| {
            stage.transform((ids[r.clone()].to_vec(), segs[r].to_vec()), last).as_slice().to_vec()
        };

        let mut base = ChunkedEmbeddings::new(&dev, &w);
        let mut base_out = feed(&mut base, 0..split, false);
        base_out.extend(feed(&mut base, split..len, true));

        let mut first = ChunkedEmbeddings::new(&dev, &w);
        let mut out = feed(&mut first, 0..split, false);
        let snap = first.state();
        let mut resumed = ChunkedEmbeddings::new(&dev, &w).with_state(&snap);
        prop_assert_eq!(resumed.position(), split);
        out.extend(feed(&mut resumed, split..len, true));

        let a: Vec<u32> = out.iter().map(|x| x.to_bits()).collect();
        let b: Vec<u32> = base_out.iter().map(|x| x.to_bits()).collect();
        prop_assert_eq!(a, b);
        prop_assert_eq!(resumed.state(), base.state());
    }

    /// Save/restore is exact for the encoder stage: random sequence lengths,
    /// random split into two sub-batches; the restored stage's outputs and
    /// progress counter must match the uninterrupted stream bitwise.
    #[test]
    fn prop_encoder_state_roundtrip_is_bitwise(
        lens in proptest::collection::vec(1usize..8, 2..6),
        split_pick in 0usize..1000,
        seed in 0u64..1000,
    ) {
        let _g = ISA_LOCK.lock().unwrap();
        let split = 1 + split_pick % (lens.len() - 1);
        let config = BertConfig::tiny();
        let model = BertModel::new_random(config, 1, 42);
        let hidden = config.hidden();
        let dev = device();
        let seqs: Vec<Vec<f32>> = lens
            .iter()
            .enumerate()
            .map(|(i, &l)| Tensor::randn([l, hidden], seed + i as u64).as_slice().to_vec())
            .collect();
        let feed = |stage: &mut ChunkedEncoder<'_>, r: std::ops::Range<usize>, last: bool| {
            let (sub, sub_mask) = padded_batch(&seqs[r], hidden);
            let out = stage.transform((sub, sub_mask.clone()), last);
            valid_bits(&out, &sub_mask)
        };

        let mut base = ChunkedEncoder::new(&dev, &model, OptLevel::FusedMha);
        let mut base_out = feed(&mut base, 0..split, false);
        base_out.extend(feed(&mut base, split..lens.len(), true));

        let mut first = ChunkedEncoder::new(&dev, &model, OptLevel::FusedMha);
        let mut out = feed(&mut first, 0..split, false);
        let snap = first.state();
        let mut resumed = ChunkedEncoder::new(&dev, &model, OptLevel::FusedMha).with_state(&snap);
        prop_assert_eq!(resumed.sequences_done(), split);
        out.extend(feed(&mut resumed, split..lens.len(), true));

        prop_assert_eq!(out, base_out);
        prop_assert_eq!(resumed.state(), base.state());
    }
}
