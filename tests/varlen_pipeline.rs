//! Variable-length edge cases through the whole pipeline, plus typed error
//! paths and property-based cross-level equivalence on random shapes.

use bytetransformer::prelude::*;
use proptest::prelude::*;

fn model() -> BertModel {
    BertModel::new_random(BertConfig::tiny(), 1, 42)
}

fn zeroed_input(mask: &BatchMask, hidden: usize, seed: u64) -> Tensor {
    let mut input = Tensor::randn([mask.batch(), mask.max_seq_len(), hidden], seed);
    for (b, &len) in mask.seq_lens().iter().enumerate() {
        for s in len..mask.max_seq_len() {
            for h in 0..hidden {
                input.set(&[b, s, h], 0.0).unwrap();
            }
        }
    }
    input
}

fn valid_diff(a: &Tensor, b: &Tensor, mask: &BatchMask) -> f32 {
    let hidden = a.dims()[2];
    let mut worst = 0.0f32;
    for (bi, &len) in mask.seq_lens().iter().enumerate() {
        for s in 0..len {
            for h in 0..hidden {
                worst = worst.max((a.at(&[bi, s, h]).unwrap() - b.at(&[bi, s, h]).unwrap()).abs());
            }
        }
    }
    worst
}

#[test]
fn single_token_sequences() {
    let m = model();
    let mask = BatchMask::from_lens(vec![1, 1, 1], 8).unwrap();
    let input = zeroed_input(&mask, m.config.hidden(), 1);
    let dev = Device::new();
    let a = m.forward(&dev, &input, &mask, OptLevel::Baseline).unwrap();
    let b = m.forward(&dev, &input, &mask, OptLevel::FusedMha).unwrap();
    assert!(valid_diff(&a, &b, &mask) < 5e-3);
}

#[test]
fn batch_with_empty_sequences() {
    let m = model();
    let mask = BatchMask::from_lens(vec![0, 6, 0, 3], 8).unwrap();
    let input = zeroed_input(&mask, m.config.hidden(), 2);
    let dev = Device::new();
    let a = m.forward(&dev, &input, &mask, OptLevel::ZeroPadding).unwrap();
    let b = m.forward(&dev, &input, &mask, OptLevel::FusedMha).unwrap();
    assert!(valid_diff(&a, &b, &mask) < 5e-3);
    // Empty sequences produce all-zero output rows on the packed paths.
    for s in 0..8 {
        for h in 0..m.config.hidden() {
            assert_eq!(b.at(&[0, s, h]).unwrap(), 0.0);
        }
    }
}

#[test]
fn fully_packed_batch_has_alpha_one() {
    let m = model();
    let mask = BatchMask::from_lens(vec![8; 3], 8).unwrap();
    assert_eq!(mask.alpha(), 1.0);
    let input = zeroed_input(&mask, m.config.hidden(), 3);
    let dev_zp = Device::new();
    m.forward(&dev_zp, &input, &mask, OptLevel::ZeroPadding).unwrap();
    let dev_base = Device::new();
    m.forward(&dev_base, &input, &mask, OptLevel::GeluFusion).unwrap();
    // α = 1: packing saves no GEMM flops (only the MHA difference remains
    // at higher levels); the gemm0 kernels must count identically.
    let gemm0 = |dev: &Device| -> u64 {
        dev.trace()
            .iter()
            .filter(|r| r.name.starts_with("gemm0"))
            .map(|r| r.cost.flops)
            .sum()
    };
    assert_eq!(gemm0(&dev_zp), gemm0(&dev_base));
}

#[test]
fn extreme_length_skew() {
    // One max-length sequence among tiny ones — the worst case for padding.
    let m = model();
    let mask = BatchMask::from_lens(vec![64, 1, 2, 1], 64).unwrap();
    let input = zeroed_input(&mask, m.config.hidden(), 4);
    let dev = Device::new();
    let a = m.forward(&dev, &input, &mask, OptLevel::Baseline).unwrap();
    let b = m.forward(&dev, &input, &mask, OptLevel::FusedMha).unwrap();
    assert!(valid_diff(&a, &b, &mask) < 5e-3);
    // Padding waste: baseline pays 4×64 slots for 68 tokens.
    assert!(mask.alpha() < 0.3);
}

#[test]
fn mask_matrix_entry_point() {
    // Users may provide the raw 0/1 mask matrix, as in the paper's Fig. 4.
    let mat = vec![
        1, 1, 1, 1, 1, // 5 tokens
        1, 1, 0, 0, 0, // 2 tokens
        1, 1, 1, 1, 0, // 4 tokens
    ];
    let mask = BatchMask::from_mask_matrix(&mat, 3, 5).unwrap();
    assert_eq!(mask.seq_lens(), &[5, 2, 4]);
    let idx = PackingIndex::from_mask(&mask);
    assert_eq!(idx.valid_words(), 11);
    assert_eq!(idx.seq_offsets(), &[0, 5, 7, 11]);
}

#[test]
fn forward_is_deterministic_one_vs_n_workers() {
    // Seeded end-to-end determinism: the same input through the full
    // pipeline must be bitwise-identical across three pooled (N-worker)
    // runs and three single-thread runs (every parallel entry point forced
    // inline via `rayon::sequential`). Parallel decomposition may change
    // who computes each row, never what is computed.
    if std::env::var("BYTE_POOL_THREADS").is_err() {
        std::env::set_var("BYTE_POOL_THREADS", "4");
    }
    let m = model();
    let mask = BatchMask::from_lens(vec![7, 1, 0, 5], 8).unwrap();
    let input = zeroed_input(&mask, m.config.hidden(), 99);
    for level in [OptLevel::Baseline, OptLevel::FusedMha] {
        let run = || {
            let dev = Device::new();
            m.forward(&dev, &input, &mask, level).unwrap().as_slice().to_vec()
        };
        let reference = rayon::sequential(run);
        for round in 0..3 {
            let pooled = run();
            let sequential = rayon::sequential(run);
            assert_eq!(reference.len(), pooled.len());
            for (i, (r, p)) in reference.iter().zip(&pooled).enumerate() {
                assert!(
                    r.to_bits() == p.to_bits(),
                    "{level:?} round {round}: pooled[{i}] {p:?} != sequential reference {r:?}"
                );
            }
            for (i, (r, s)) in reference.iter().zip(&sequential).enumerate() {
                assert!(
                    r.to_bits() == s.to_bits(),
                    "{level:?} round {round}: sequential[{i}] {s:?} drifted from {r:?}"
                );
            }
        }
    }
}

#[test]
fn error_paths_are_typed_not_panics() {
    let m = model();
    let mask = BatchMask::from_lens(vec![4], 8).unwrap();
    let dev = Device::new();
    // Wrong rank.
    assert!(m
        .forward(&dev, &Tensor::zeros([8, m.config.hidden()]), &mask, OptLevel::Baseline)
        .is_err());
    // Wrong batch.
    assert!(m
        .forward(
            &dev,
            &Tensor::zeros([2, 8, m.config.hidden()]),
            &mask,
            OptLevel::Baseline
        )
        .is_err());
    // Wrong hidden.
    assert!(m
        .forward(&dev, &Tensor::zeros([1, 8, 7]), &mask, OptLevel::FusedMha)
        .is_err());
    // Bad mask construction.
    assert!(BatchMask::from_lens(vec![9], 8).is_err());
    assert!(BatchMask::from_mask_matrix(&[1, 0, 1, 1], 1, 4).is_err());
}

/// Pinned from `tests/varlen_pipeline.proptest-regressions` (shrinker
/// minimum `lens = [0], seed = 0`): a batch holding nothing but one empty
/// sequence. Promoted to a named deterministic test so the case runs on
/// every `cargo test` without the proptest shrinker in the loop — the
/// regressions file stays as the generator-side pin.
#[test]
fn regression_batch_of_one_empty_sequence() {
    let m = model();
    // Exactly the prop body's shape derivation: max(lens) clamped to >= 1.
    let mask = BatchMask::from_lens(vec![0], 1).unwrap();
    let input = zeroed_input(&mask, m.config.hidden(), 0);
    let dev = Device::new();
    let base = m.forward(&dev, &input, &mask, OptLevel::Baseline).unwrap();
    let fused = m.forward(&dev, &input, &mask, OptLevel::FusedMha).unwrap();
    assert!(valid_diff(&base, &fused, &mask) < 5e-3);
    // An all-padding batch must come out all zeros on the packed path:
    // there are no valid rows to scatter back.
    for h in 0..m.config.hidden() {
        assert_eq!(fused.at(&[0, 0, h]).unwrap(), 0.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn prop_levels_agree_on_random_masks(
        lens in proptest::collection::vec(0usize..20, 1..5),
        seed in 0u64..1000
    ) {
        let m = model();
        let max = lens.iter().copied().max().unwrap_or(0).max(1);
        let mask = BatchMask::from_lens(lens, max).unwrap();
        let input = zeroed_input(&mask, m.config.hidden(), seed);
        let dev = Device::new();
        let base = m.forward(&dev, &input, &mask, OptLevel::Baseline).unwrap();
        let fused = m.forward(&dev, &input, &mask, OptLevel::FusedMha).unwrap();
        prop_assert!(valid_diff(&base, &fused, &mask) < 5e-3);
    }
}
