//! Seeded stress suite for the `bt-serve` continuous-batching server.
//!
//! These tests pin the acceptance contract of the serving layer:
//! * accounting is **exact** under overload — every offered request is
//!   served or shed with a reason, never dropped or double-counted;
//! * overload degrades gracefully — at 2× calibrated capacity the server
//!   sheds load, and the p99 latency of the requests it *does* serve stays
//!   within 3× of the p99 at 0.5× load;
//! * runs are bit-deterministic for a fixed seed;
//! * the threaded front-end preserves the same accounting under real
//!   multi-producer contention.
//!
//! The second half stresses the token-step decode loop the same way: mixed
//! prefill+decode batches under overload must keep **two** exact ledgers
//! (per request and per token step), replay deterministically for a fixed
//! seed, and shed KV-cache exhaustion with the distinct
//! [`ShedReason::CacheOom`] — never folded into compute overload.

use bytetransformer::frameworks::admission::{CutPolicy, ShedReason};
use bytetransformer::frameworks::calibration::calibrate_capacity;
use bytetransformer::frameworks::decode::{
    decode_workload, run_decode_loop, DecodeConfig, DecodeOutcome, DecodeRequest, ModeledDecodeEngine,
};
use bytetransformer::frameworks::server::{modeled_forward_executor, run_open_loop, Outcome, ServeConfig, Server};
use bytetransformer::frameworks::serving::{poisson_arrivals, TimedRequest};
use bytetransformer::frameworks::{FrameworkKind, SimFramework};
use bytetransformer::prelude::*;
use bytetransformer::varlen::paged::PagedLayout;

/// Synthetic batch cost: a fixed launch overhead plus linear token cost at
/// `TOKENS_PER_SEC`. Deterministic and fast, so the stress runs thousands
/// of requests in debug builds.
const TOKENS_PER_SEC: f64 = 1.0e6;
const BATCH_OVERHEAD: f64 = 50e-6;

fn synthetic_exec(mask: &BatchMask) -> f64 {
    BATCH_OVERHEAD + mask.valid_words() as f64 / TOKENS_PER_SEC
}

/// The same knob derivation `btx serve` uses, against the synthetic
/// capacity: budget ≈ 8 mean-requests of tokens, deadline = 2 batch
/// intervals.
fn stress_setup(seq: usize, alpha: f64) -> (ServeConfig, f64, f64) {
    let mean_tokens = alpha * seq as f64;
    let interval = 8.0 * mean_tokens / TOKENS_PER_SEC;
    let budget = (TOKENS_PER_SEC * interval).round() as usize;
    let config = ServeConfig {
        policy: CutPolicy::TokenBudget { budget_tokens: budget },
        queue_capacity: 64,
        deadline: 2.0 * interval,
        max_len: seq,
        chunk_tokens: 0,
    };
    (config, mean_tokens, interval)
}

fn arrivals_at_load(n: usize, load: f64, seq: usize, alpha: f64, seed: u64) -> Vec<TimedRequest> {
    let mean_tokens = alpha * seq as f64;
    let rate = load * TOKENS_PER_SEC / mean_tokens;
    poisson_arrivals(n, rate, LengthDistribution::PaperUniform { alpha }, seq, seed)
}

#[test]
fn accounting_is_exact_and_tail_is_bounded_at_double_load() {
    let (config, _, _) = stress_setup(256, 0.6);
    for seed in [7u64, 1234, 0xdead_beef] {
        let light = run_open_loop(&arrivals_at_load(2000, 0.5, 256, 0.6, seed), &config, synthetic_exec);
        let heavy = run_open_loop(&arrivals_at_load(2000, 2.0, 256, 0.6, seed), &config, synthetic_exec);
        let ls = light.summary();
        let hs = heavy.summary();

        // Exact accounting at both loads, request by request.
        for s in [&ls, &hs] {
            assert!(
                s.accounting_is_exact(),
                "seed {seed}: served {} + shed {} != offered {}",
                s.served,
                s.shed(),
                s.offered
            );
            assert_eq!(s.offered, 2000);
        }
        for report in [&light, &heavy] {
            let mut ids: Vec<usize> = report.outcomes.iter().map(|o| o.id).collect();
            ids.sort_unstable();
            assert_eq!(
                ids,
                (0..2000).collect::<Vec<_>>(),
                "every request has exactly one outcome"
            );
        }

        // Light load serves essentially everything; 2× must shed hard.
        assert!(
            ls.shed() * 100 <= ls.offered,
            "seed {seed}: light load shed {} of {}",
            ls.shed(),
            ls.offered
        );
        assert!(
            hs.shed() * 10 >= hs.offered * 3,
            "seed {seed}: 2× load shed only {} of {}",
            hs.shed(),
            hs.offered
        );
        assert!(hs.served > 0, "overload still serves the admitted fraction");

        // Graceful degradation: the p99 of *served* requests under overload
        // stays within 3× of the light-load p99 (deadline + one batch).
        let ratio = hs.served_latency.p99 / ls.served_latency.p99.max(1e-12);
        assert!(
            ratio <= 3.0,
            "seed {seed}: p99 ratio {ratio:.2} (2×: {:.3} ms vs 0.5×: {:.3} ms)",
            hs.served_latency.p99 * 1e3,
            ls.served_latency.p99 * 1e3
        );

        // Goodput at 2× is at least the goodput at 0.5× — shedding protects
        // throughput instead of collapsing it.
        assert!(hs.goodput_tokens_per_sec() >= ls.goodput_tokens_per_sec() * 0.9);
    }
}

#[test]
fn runs_are_bit_deterministic_for_a_fixed_seed() {
    let (config, _, _) = stress_setup(128, 0.6);
    let reqs = arrivals_at_load(1500, 2.0, 128, 0.6, 99);
    let a = run_open_loop(&reqs, &config, synthetic_exec);
    let b = run_open_loop(&reqs, &config, synthetic_exec);
    assert_eq!(a.outcomes, b.outcomes);
    assert_eq!(a.batches, b.batches);
    assert_eq!(a.makespan, b.makespan);
}

#[test]
fn deadline_sheds_report_at_least_the_deadline_of_waiting() {
    let (config, _, _) = stress_setup(256, 0.6);
    let report = run_open_loop(&arrivals_at_load(2000, 2.0, 256, 0.6, 5), &config, synthetic_exec);
    let mut expired = 0;
    for o in &report.outcomes {
        if let Outcome::Shed {
            reason: ShedReason::DeadlineExpired,
            wait,
        } = o.outcome
        {
            expired += 1;
            assert!(
                wait >= config.deadline,
                "a deadline shed waited {wait:.6}s < deadline {:.6}s",
                config.deadline
            );
        }
    }
    assert!(expired > 0, "2× load must produce deadline cancellations");
}

#[test]
fn queue_full_sheds_appear_when_the_queue_is_tight() {
    let (mut config, _, _) = stress_setup(256, 0.6);
    config.queue_capacity = 4;
    let report = run_open_loop(&arrivals_at_load(2000, 2.0, 256, 0.6, 21), &config, synthetic_exec);
    let s = report.summary();
    assert!(s.accounting_is_exact());
    assert!(
        s.shed_queue_full > 0,
        "a 4-slot queue under 2× load must exercise backpressure"
    );
    // Gate rejections report zero queue time.
    for o in &report.outcomes {
        if let Outcome::Shed {
            reason: ShedReason::QueueFull,
            wait,
        } = o.outcome
        {
            assert_eq!(wait, 0.0);
        }
    }
}

#[test]
fn real_forward_serving_overload_smoke() {
    // End-to-end: calibrate capacity from the roofline on a small model,
    // then serve at 2× that capacity with real framework forwards.
    let config = BertConfig {
        heads: 4,
        head_size: 16,
        ffn_scale: 4,
        layers: 1,
        eps: 1e-6,
    };
    let model = BertModel::new_random(config, 1, 1);
    let fw = SimFramework::new(FrameworkKind::ByteTransformer, model);
    let capacity = calibrate_capacity(&fw, 64, 0.6, 8, 42);
    assert!(capacity.tokens_per_sec > 0.0);
    let mean_tokens = 0.6 * 64.0;
    let interval = 8.0 * mean_tokens / capacity.tokens_per_sec;
    let serve_config = ServeConfig {
        policy: CutPolicy::TokenBudget {
            budget_tokens: capacity.token_budget(interval),
        },
        queue_capacity: 32,
        deadline: 2.0 * interval,
        max_len: 64,
        chunk_tokens: 0,
    };
    let rate = capacity.request_rate(mean_tokens, 2.0);
    let reqs = poisson_arrivals(48, rate, LengthDistribution::PaperUniform { alpha: 0.6 }, 64, 13);
    let report = run_open_loop(
        &reqs,
        &serve_config,
        modeled_forward_executor(&fw, CostModel::a100(), 42),
    );
    let s = report.summary();
    assert!(s.accounting_is_exact());
    assert_eq!(s.offered, 48);
    assert!(s.shed() > 0, "2× calibrated capacity must shed");
    assert!(s.served > 0, "overload still serves admitted requests");
}

#[test]
fn threaded_server_under_producer_contention_accounts_exactly() {
    let config = ServeConfig {
        policy: CutPolicy::TokenBudget { budget_tokens: 128 },
        queue_capacity: 8,
        deadline: 30.0,
        max_len: 128,
        chunk_tokens: 0,
    };
    let server = Server::spawn(config, |mask| {
        std::hint::black_box(mask.valid_words());
    });
    let producers = 8;
    let per_producer = 256;
    let mut rejected = 0usize;
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for t in 0..producers {
            let handle = server.handle();
            joins.push(scope.spawn(move || {
                let mut rejected = 0usize;
                for i in 0..per_producer {
                    let id = t * per_producer + i;
                    match handle.try_submit(id, 1 + id % 96) {
                        Ok(()) => {}
                        Err(Some(ShedReason::QueueFull)) => rejected += 1,
                        Err(other) => panic!("unexpected submit failure: {other:?}"),
                    }
                }
                rejected
            }));
        }
        for j in joins {
            rejected += j.join().expect("producer thread");
        }
    });
    let (outcomes, _batches) = server.finish();
    let offered = producers * per_producer;
    assert_eq!(
        outcomes.len() + rejected,
        offered,
        "every submission is a server outcome or a backpressure rejection"
    );
    let mut ids: Vec<usize> = outcomes.iter().map(|o| o.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), outcomes.len(), "no duplicate outcomes");
}

// --- token-step decode loop -------------------------------------------------

/// A decode workload at a target token load: prompt lengths/arrivals from
/// the encoder trace generator, decode lengths a seeded splitmix64 draw.
fn decode_arrivals(n: usize, rate: f64, seq: usize, max_decode: usize, seed: u64) -> Vec<DecodeRequest> {
    let trace = poisson_arrivals(n, rate, LengthDistribution::PaperUniform { alpha: 0.6 }, seq, seed);
    decode_workload(&trace, max_decode, seed)
}

fn decode_config() -> DecodeConfig {
    DecodeConfig {
        budget_tokens: 64,
        queue_capacity: 48,
        deadline: 0.05,
        max_prompt_len: 32,
        max_sessions: 16,
        chunk_tokens: 0,
    }
}

/// The decode twin of the headline serve test: under an overloaded mixed
/// prefill+decode workload, accounting is exact at **both** granularities —
/// per request (`served + shed == offered`) and per token step (every
/// generated/prefilled token in the step ledger reconciles with exactly one
/// request outcome).
#[test]
fn decode_accounting_is_exact_per_request_and_per_step() {
    for seed in [3u64, 271, 0xfeed_f00d] {
        let requests = decode_arrivals(400, 3000.0, 32, 12, seed);
        // ~19k serviceable tokens/s against ~48k offered: ≈2.5× overload, so
        // the queue backs up and the deadline gate has to work.
        let mut engine = ModeledDecodeEngine::new(PagedLayout::new(4, 96), 200e-6, 50e-6);
        let report = run_decode_loop(&requests, &decode_config(), &mut engine);
        let s = report.summary();

        assert!(
            s.accounting_is_exact(),
            "seed {seed}: served {} + shed {} != offered {}",
            s.served,
            s.shed(),
            s.offered
        );
        assert_eq!(s.offered, 400);
        assert!(report.ledger_is_exact(), "seed {seed}: step ledger does not reconcile");

        // Every request resolves exactly once.
        let mut ids: Vec<usize> = report.outcomes.iter().map(|o| o.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..400).collect::<Vec<_>>());

        // Per-step budget bound: live decode tokens + admitted prefill
        // tokens fit the budget, except one oversized prompt running alone.
        for r in &report.steps {
            let work = r.decode_sessions + r.prefill_tokens;
            assert!(
                work <= decode_config().budget_tokens || (r.decode_sessions == 0 && r.prefill_sessions == 1),
                "seed {seed}, step {}: {work} tokens over budget",
                r.step
            );
        }

        // Overload must both serve and shed — the interesting regime.
        assert!(s.served > 0, "seed {seed}: overload still serves admitted work");
        assert!(
            s.shed() > 0,
            "seed {seed}: 3k req/s against a 64-token budget must shed"
        );
        assert_eq!(
            engine.pool().blocks_in_use(),
            0,
            "seed {seed}: drained runs free every block"
        );
    }
}

/// Fixed seed ⇒ bit-identical replay: outcomes, the step ledger, and the
/// virtual clock. The loop has no hidden entropy source.
#[test]
fn decode_runs_replay_bit_identically_for_a_fixed_seed() {
    let requests = decode_arrivals(300, 2500.0, 32, 10, 77);
    let run = || {
        let mut engine = ModeledDecodeEngine::new(PagedLayout::new(4, 96), 20e-6, 1e-6);
        run_decode_loop(&requests, &decode_config(), &mut engine)
    };
    let a = run();
    let b = run();
    assert_eq!(a.outcomes, b.outcomes);
    assert_eq!(a.steps, b.steps);
    assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
    assert_eq!(a.high_water_blocks, b.high_water_blocks);
}

/// A starved block pool sheds with the **distinct** [`ShedReason::CacheOom`]
/// — operators can tell "pool too small" from "host too slow". Mid-decode
/// evictions report the whole prompt as `prefilled_tokens` with their
/// partial generation count, and every OOM shed is attributed to the step
/// that caused it.
#[test]
fn decode_cache_oom_sheds_with_distinct_reason() {
    let requests = decode_arrivals(200, 4000.0, 32, 12, 41);
    // 8 blocks × 4 tokens = 32 token slots for a 64-token budget: the cache,
    // not the compute budget, is the binding constraint.
    let mut engine = ModeledDecodeEngine::new(PagedLayout::new(4, 8), 20e-6, 1e-6);
    let report = run_decode_loop(&requests, &decode_config(), &mut engine);
    let s = report.summary();
    assert!(s.accounting_is_exact(), "{s:?}");
    assert!(report.ledger_is_exact());
    assert!(s.shed_cache_oom > 0, "a starved pool must shed CacheOom: {s:?}");

    // OOM sheds are step-attributed, exactly.
    let step_ooms: usize = report.steps.iter().map(|r| r.oom_sheds).sum();
    assert_eq!(step_ooms, s.shed_cache_oom, "every CacheOom shed belongs to one step");

    // The reason is distinct in kind and in label.
    assert_eq!(ShedReason::CacheOom.label(), "cache_oom");
    for o in &report.outcomes {
        if let DecodeOutcome::Shed {
            reason: ShedReason::CacheOom,
            prefilled_tokens,
            generated,
            ..
        } = o.outcome
        {
            if prefilled_tokens == o.prompt_len {
                // Mid-decode eviction: the prompt went in, some tokens may
                // have come out, but never the full request.
                assert!(generated < o.decode_tokens);
            } else {
                assert_eq!(generated, 0, "a refused prefill generated nothing");
                assert_eq!(prefilled_tokens, 0, "whole-mode prefill is all-or-nothing");
            }
        }
    }
    // The pool never exceeded its capacity and drained clean.
    assert!(report.high_water_blocks <= 8);
    assert_eq!(engine.pool().blocks_in_use(), 0);
}

/// The chunked-prefill acceptance test: under ≈2× overload with chunked
/// prefill enabled, `served + shed + cancelled == offered` holds exactly —
/// with every shed reason broken out, including mid-request cancellations,
/// which are partial work and the reason the token-step ledger must track
/// prefilled tokens per request rather than a boolean.
#[test]
fn chunked_prefill_overload_accounts_exactly_with_cancellations() {
    for seed in [3u64, 271, 0xfeed_f00d] {
        let requests = decode_arrivals(400, 3000.0, 32, 12, seed);
        let cfg = DecodeConfig {
            chunk_tokens: 4,
            ..decode_config()
        };
        let mut engine = ModeledDecodeEngine::new(PagedLayout::new(4, 96), 200e-6, 50e-6);
        let report = run_decode_loop(&requests, &cfg, &mut engine);
        let s = report.summary();

        // The headline identity, written out reason by reason so a new shed
        // class can never silently leak out of the ledger.
        assert_eq!(
            s.served + s.shed_queue_full + s.shed_deadline + s.shed_too_long + s.shed_cache_oom + s.shed_cancelled,
            s.offered,
            "seed {seed}: {s:?}"
        );
        assert!(s.accounting_is_exact(), "seed {seed}: {s:?}");
        assert_eq!(s.offered, 400);
        assert!(
            report.ledger_is_exact(),
            "seed {seed}: partial prefills must reconcile token-for-token"
        );

        // 2× overload with slow steps and 4-token chunks: some request that
        // started prefilling must get cancelled between chunks.
        assert!(
            s.shed_cancelled > 0,
            "seed {seed}: chunked overload must cancel mid-request: {s:?}"
        );
        assert!(s.served > 0, "seed {seed}: overload still serves admitted work");

        // Cancellations carry their partial prefill into the ledger.
        for o in &report.outcomes {
            if let DecodeOutcome::Shed {
                reason: ShedReason::CancelledMidRequest,
                prefilled_tokens,
                generated,
                ..
            } = o.outcome
            {
                assert!(
                    prefilled_tokens < o.prompt_len,
                    "a finished prefill cannot be cancelled mid-request"
                );
                assert_eq!(generated, 0, "cancellation happens before decode starts");
            }
        }
        assert_eq!(
            engine.pool().blocks_in_use(),
            0,
            "seed {seed}: cancelled sessions must release their blocks"
        );
    }
}

/// Deadline expiry in the decode queue is about prefill *start*, and a
/// tight deadline against slow steps must cancel queued work while keeping
/// both ledgers exact.
#[test]
fn decode_deadline_expires_queued_prefills_exactly() {
    let requests = decode_arrivals(150, 8000.0, 32, 8, 59);
    let cfg = DecodeConfig {
        deadline: 5e-5,
        ..decode_config()
    };
    let mut engine = ModeledDecodeEngine::new(PagedLayout::new(4, 256), 5e-4, 2e-6);
    let report = run_decode_loop(&requests, &cfg, &mut engine);
    let s = report.summary();
    assert!(s.accounting_is_exact(), "{s:?}");
    assert!(report.ledger_is_exact());
    assert!(
        s.shed_deadline > 0,
        "tight deadline vs slow steps must expire work: {s:?}"
    );
    for o in &report.outcomes {
        if let DecodeOutcome::Shed {
            reason: ShedReason::DeadlineExpired,
            wait,
            prefilled_tokens,
            generated,
        } = o.outcome
        {
            assert!(wait >= cfg.deadline, "expired after {wait:.6}s < deadline");
            assert!(
                prefilled_tokens == 0 && generated == 0,
                "deadline sheds never touched the cache"
            );
        }
    }
}
