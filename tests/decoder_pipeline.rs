//! Integration tests of the decoder extension through the facade: seq2seq
//! forward, incremental sessions, embeddings front-end, and their
//! interactions.
#![allow(clippy::needless_range_loop)] // oracle-style index loops

use bytetransformer::core::embeddings::{embed_packed, embed_padded, EmbeddingWeights};
use bytetransformer::core::incremental::DecoderSession;
use bytetransformer::prelude::*;

fn zeroed(mask: &BatchMask, hidden: usize, seed: u64) -> Tensor {
    let mut t = Tensor::randn([mask.batch(), mask.max_seq_len(), hidden], seed);
    for (b, &len) in mask.seq_lens().iter().enumerate() {
        for s in len..mask.max_seq_len() {
            for h in 0..hidden {
                t.set(&[b, s, h], 0.0).unwrap();
            }
        }
    }
    t
}

#[test]
fn seq2seq_respects_source_lengths() {
    // Extending the *padding* of the source (same valid tokens, bigger
    // max_seq) must not change the decoder output.
    let config = BertConfig::tiny();
    let model = Seq2SeqTransformer::new_random(config, 1, 1, 3);
    let tgt_mask = BatchMask::from_lens(vec![4], 4).unwrap();
    let tgt = zeroed(&tgt_mask, config.hidden(), 1);

    let src_small = BatchMask::from_lens(vec![5], 5).unwrap();
    let src_a = zeroed(&src_small, config.hidden(), 2);
    let src_big = BatchMask::from_lens(vec![5], 9).unwrap();
    let mut src_b = Tensor::zeros([1, 9, config.hidden()]);
    for s in 0..5 {
        for h in 0..config.hidden() {
            src_b.set(&[0, s, h], src_a.at(&[0, s, h]).unwrap()).unwrap();
        }
    }
    let dev = Device::new();
    let out_a = model.forward(&dev, &src_a, &src_small, &tgt, &tgt_mask).unwrap();
    let out_b = model.forward(&dev, &src_b, &src_big, &tgt, &tgt_mask).unwrap();
    for s in 0..4 {
        for h in 0..config.hidden() {
            let a = out_a.at(&[0, s, h]).unwrap();
            let b = out_b.at(&[0, s, h]).unwrap();
            assert!((a - b).abs() < 1e-4, "padding leaked into output at ({s},{h})");
        }
    }
}

#[test]
fn incremental_session_matches_batch_decoder_through_facade() {
    let config = BertConfig::tiny();
    let model = Seq2SeqTransformer::new_random(config, 2, 2, 9);
    let hidden = config.hidden();
    let dev = Device::new();

    // Encode a source and extract the packed memory for one sequence.
    let src_mask = BatchMask::from_lens(vec![6], 6).unwrap();
    let src = zeroed(&src_mask, hidden, 4);
    let memory = model
        .encoder
        .forward(&dev, &src, &src_mask, OptLevel::FusedMha)
        .unwrap();
    let mem_packed = memory.reshape([6, hidden]).unwrap();

    // Full teacher-forcing decode of a 5-token target.
    let tgt_mask = BatchMask::from_lens(vec![5], 5).unwrap();
    let tgt = zeroed(&tgt_mask, hidden, 5);
    let full = model
        .decoder
        .forward(
            &dev,
            &tgt,
            &tgt_mask,
            &mem_packed.clone().reshape([1, 6, hidden]).unwrap(),
            &src_mask,
        )
        .unwrap();

    // Incremental session, one token at a time.
    let mut session = DecoderSession::new(&model.decoder, &dev, &mem_packed);
    for s in 0..5 {
        let x: Vec<f32> = (0..hidden).map(|h| tgt.at(&[0, s, h]).unwrap()).collect();
        let step = session.step(&dev, &x);
        for h in 0..hidden {
            let e = full.at(&[0, s, h]).unwrap();
            assert!((step[h] - e).abs() < 5e-3, "step {s} dim {h}: {} vs {e}", step[h]);
        }
    }
}

#[test]
fn embeddings_feed_the_packed_encoder_directly() {
    // ids -> packed embedding -> packed encoder layers == ids -> padded
    // embedding -> padded-input forward, on valid tokens.
    let config = BertConfig::tiny();
    let model = BertModel::new_random(config, 1, 11);
    let vocab = 30;
    let mask = BatchMask::from_lens(vec![4, 7, 2], 8).unwrap();
    let ew = EmbeddingWeights::new_random(&config, vocab, 8, 5);
    let n = mask.padded_words();
    let mut rng = bytetransformer::tensor::rng::Xoshiro256StarStar::seed_from_u64(6);
    let ids: Vec<u32> = (0..n).map(|_| rng.below(vocab as u64) as u32).collect();
    let segments: Vec<u32> = (0..n).map(|_| rng.below(2) as u32).collect();
    let dev = Device::new();

    // Path A: padded embedding into the padded-forward entry point.
    let emb_pad = embed_padded(&dev, &ids, &segments, &mask, &ew).unwrap();
    let out_a = model.forward(&dev, &emb_pad, &mask, OptLevel::FusedMha).unwrap();

    // Path B: packed embedding directly into packed layers, unpacked at end.
    let idx = PackingIndex::from_mask(&mask);
    let emb_packed = embed_packed(&dev, &ids, &segments, &idx, &ew).unwrap();
    let mut x = emb_packed;
    for w in &model.weights.layers {
        x = model.layer_forward_packed(&dev, &x, w, &idx, OptLevel::FusedMha);
    }
    let out_b = idx.unpack(&dev, &x).unwrap();

    for (b, &len) in mask.seq_lens().iter().enumerate() {
        for s in 0..len {
            for h in 0..config.hidden() {
                let a = out_a.at(&[b, s, h]).unwrap();
                let bb = out_b.at(&[b, s, h]).unwrap();
                assert!((a - bb).abs() < 5e-3, "({b},{s},{h}): {a} vs {bb}");
            }
        }
    }
}

#[test]
fn causal_mha_available_from_prelude() {
    // Smoke the prelude exports for the decoder kernels.
    let config = BertConfig::tiny();
    let mask = BatchMask::from_lens(vec![5], 8).unwrap();
    let idx = PackingIndex::from_mask(&mask);
    let q = Tensor::randn([config.heads, 5, config.head_size], 1);
    let k = Tensor::randn([config.heads, 5, config.head_size], 2);
    let v = Tensor::randn([config.heads, 5, config.head_size], 3);
    let dev = Device::new();
    let out = causal_fused_attention(&dev, &q, &k, &v, &idx);
    assert_eq!(out.dims(), &[5, config.hidden()]);
    assert!(out.as_slice().iter().all(|x| x.is_finite()));
}
