//! The execution trace as an audit: counted FLOPs must match the paper's
//! Table II closed forms, and the launch structure must match the pipeline
//! diagrams of Fig. 2.

use bytetransformer::core::flops::{layer_flops, mha_fused_exact, FlopVariant};
use bytetransformer::prelude::*;

fn run_layer(model: &BertModel, mask: &BatchMask, opt: OptLevel) -> Device {
    let dev = Device::new();
    let input = Tensor::zeros([mask.batch(), mask.max_seq_len(), model.config.hidden()]);
    model.forward(&dev, &input, mask, opt).unwrap();
    dev
}

fn gemm_flops(dev: &Device, prefix: &str) -> u64 {
    dev.trace()
        .iter()
        .filter(|r| r.name.starts_with(prefix))
        .map(|r| r.cost.flops)
        .sum()
}

#[test]
fn counted_flops_match_table2_baseline() {
    let config = BertConfig::tiny();
    let model = BertModel::new_random(config, 1, 1);
    let mask = BatchMask::from_lens(vec![10, 16, 4], 16).unwrap();
    let dev = run_layer(&model, &mask, OptLevel::Baseline);
    let expect = layer_flops(&mask, config.hidden(), FlopVariant::Baseline);
    assert_eq!(gemm_flops(&dev, "gemm0"), expect.gemm0);
    assert_eq!(gemm_flops(&dev, "gemm1"), expect.gemm1);
    assert_eq!(gemm_flops(&dev, "gemm2"), expect.gemm2);
    assert_eq!(gemm_flops(&dev, "gemm3"), expect.gemm3);
    // The two batched GEMMs inside attention (exclude softmax/layout).
    let mha: u64 = dev
        .trace()
        .iter()
        .filter(|r| r.name.contains("batched.scores") || r.name.contains("batched.ctx"))
        .map(|r| r.cost.flops)
        .sum();
    assert_eq!(mha, expect.mha);
}

#[test]
fn counted_flops_match_table2_zero_padding() {
    let config = BertConfig::tiny();
    let model = BertModel::new_random(config, 1, 1);
    let mask = BatchMask::from_lens(vec![10, 16, 4], 16).unwrap();
    let dev = run_layer(&model, &mask, OptLevel::ZeroPadding);
    let expect = layer_flops(&mask, config.hidden(), FlopVariant::ZeroPadding);
    assert_eq!(gemm_flops(&dev, "gemm0"), expect.gemm0);
    assert_eq!(gemm_flops(&dev, "gemm1"), expect.gemm1);
    // gemm2 includes the fused GELU epilogue flops on top of Table II's GEMM
    // count (Table II counts GEMM math only).
    let epi = (mask.valid_words() * config.intermediate() * 9) as u64;
    assert_eq!(gemm_flops(&dev, "gemm2"), expect.gemm2 + epi);
    assert_eq!(gemm_flops(&dev, "gemm3"), expect.gemm3);
    // Batched MHA keeps padded shapes: same MHA flops as baseline.
    let mha: u64 = dev
        .trace()
        .iter()
        .filter(|r| r.name.contains("batched.scores") || r.name.contains("batched.ctx"))
        .map(|r| r.cost.flops)
        .sum();
    assert_eq!(mha, expect.mha);
}

#[test]
fn counted_flops_match_table2_fused_mha() {
    let config = BertConfig::tiny();
    let model = BertModel::new_random(config, 1, 1);
    let mask = BatchMask::from_lens(vec![10, 16, 4], 16).unwrap();
    let dev = run_layer(&model, &mask, OptLevel::FusedMha);
    // The fused kernel's GEMM portion is exactly Σ 4·len²·k; it also
    // declares softmax transform flops (4·len²·heads per unit), so check
    // bounds rather than equality.
    let mha: u64 = dev
        .trace()
        .iter()
        .filter(|r| r.name.contains("fused_short") || r.name.contains("grouped"))
        .map(|r| r.cost.flops)
        .sum();
    let gemm_part = mha_fused_exact(&mask, config.hidden());
    assert!(mha >= gemm_part, "fused MHA flops below the GEMM floor");
    assert!(
        mha < gemm_part + gemm_part / 2,
        "softmax overhead should be a small fraction: {mha} vs {gemm_part}"
    );
}

#[test]
fn launch_structure_matches_fig2() {
    let config = BertConfig::tiny();
    let model = BertModel::new_random(config, 1, 1);
    let mask = BatchMask::from_lens(vec![8; 2], 8).unwrap();

    // Baseline (Fig. 2a): no varlen kernels at all.
    let dev = run_layer(&model, &mask, OptLevel::Baseline);
    assert!(!dev.trace().iter().any(|r| r.name.starts_with("varlen")));

    // Zero padding (Fig. 2c): prefix sum + pack at entry, unpack at exit,
    // and the fused unpack/repack around MHA.
    let dev = run_layer(&model, &mask, OptLevel::ZeroPadding);
    let names: Vec<String> = dev.trace().iter().map(|r| r.name.clone()).collect();
    assert!(names.iter().any(|n| n == "varlen.prefix_sum"));
    assert!(names.iter().any(|n| n == "varlen.pack"));
    assert!(names.iter().any(|n| n == "varlen.unpack"));
    assert!(names.iter().any(|n| n.contains("add_bias_unpack_split_qkv")));
    assert!(names.iter().any(|n| n.contains("merge_heads_pack")));

    // Fused MHA: no unpack/repack around attention anymore.
    let dev = run_layer(&model, &mask, OptLevel::FusedMha);
    let names: Vec<String> = dev.trace().iter().map(|r| r.name.clone()).collect();
    assert!(names.iter().any(|n| n.contains("add_bias_split_qkv_packed")));
    assert!(!names.iter().any(|n| n.contains("add_bias_unpack_split_qkv")));
    assert!(names.iter().any(|n| n.contains("fused_short")));
}

#[test]
fn fused_levels_launch_fewer_kernels() {
    let config = BertConfig::tiny();
    let model = BertModel::new_random(config, 1, 1);
    let mask = BatchMask::from_lens(vec![8; 4], 8).unwrap();
    let launches: Vec<u64> = OptLevel::all()
        .iter()
        .map(|&opt| run_layer(&model, &mask, opt).launches())
        .collect();
    // LayerNorm fusion: -2 kernels; GELU fusion: -2.
    assert_eq!(launches[0] - launches[1], 2);
    assert_eq!(launches[1] - launches[2], 2);
    // Fused MHA launches fewer kernels than batched MHA + pack/unpack.
    assert!(launches[4] < launches[3]);
}

#[test]
fn flop_audit_total_matches_device_counter() {
    // Sum of per-record flops equals the aggregate counter.
    let config = BertConfig::tiny();
    let model = BertModel::new_random(config, 2, 1);
    let mask = BatchMask::from_lens(vec![7, 3], 8).unwrap();
    let dev = run_layer(&model, &mask, OptLevel::FusedMha);
    let trace_sum: u64 = dev.trace().iter().map(|r| r.cost.flops).sum();
    assert_eq!(trace_sum, dev.total_flops());
}

#[test]
fn report_buckets_cover_all_pipeline_stages() {
    let config = BertConfig::tiny();
    let model = BertModel::new_random(config, 1, 1);
    let mask = BatchMask::from_lens(vec![8; 2], 8).unwrap();
    let dev = run_layer(&model, &mask, OptLevel::Baseline);
    let report = TraceReport::by_prefix(&dev.trace());
    for bucket in [
        "gemm0",
        "gemm1",
        "gemm2",
        "gemm3",
        "attention",
        "layernorm0",
        "layernorm1",
        "bias_act",
        "layout",
    ] {
        assert!(report.bucket(bucket).is_some(), "missing bucket {bucket}");
    }
    let frac_sum: f64 = report.buckets().map(|(name, _)| report.modeled_fraction(name)).sum();
    assert!((frac_sum - 1.0).abs() < 1e-9);
}
