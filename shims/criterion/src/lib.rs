//! Offline stand-in for the `criterion` crate.
//!
//! Implements the harness surface this workspace's `harness = false` bench
//! targets use — `Criterion`, `bench_function`, `benchmark_group`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!` macros —
//! with a simple median-of-samples wall-clock measurement instead of
//! criterion's statistical machinery.

use std::time::{Duration, Instant};

/// Re-export so call sites can use `criterion::black_box`.
pub use std::hint::black_box;

/// Benchmark harness: configuration plus named measurement entry points.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Target total time spent measuring each benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Time spent running the routine before measurement starts.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            median: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        println!("bench {name:<40} median {:>12.3?}  ({} iters)", b.median, b.iters);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { criterion: self }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one named benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.criterion.bench_function(&format!("  {name}"), f);
        self
    }

    /// Ends the group (measurement already happened eagerly).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; times the routine under `iter`.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    median: Duration,
    iters: u64,
}

impl Bencher {
    /// Measures `routine`: warms up, then takes `sample_size` samples within
    /// the measurement-time budget and records the median per-call time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up, also calibrating iterations per sample.
        let warm_start = Instant::now();
        let mut calls: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || calls == 0 {
            black_box(routine());
            calls += 1;
        }
        let per_call = warm_start.elapsed() / calls.max(1) as u32;
        let budget = self.measurement_time / self.sample_size as u32;
        let iters_per_sample = if per_call.is_zero() {
            1000
        } else {
            (budget.as_nanos() / per_call.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            samples.push(t.elapsed() / iters_per_sample as u32);
        }
        samples.sort_unstable();
        self.median = samples[samples.len() / 2];
        self.iters = iters_per_sample * self.sample_size as u64;
    }
}

/// Declares a benchmark group: either `criterion_group!(name, targets...)` or
/// the long form with `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),* $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),*);
    };
}

/// Emits `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $($group();)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop_add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        let mut g = c.benchmark_group("grouped");
        g.bench_function("inner", |b| b.iter(|| black_box(3u64) * black_box(4u64)));
        g.finish();
    }

    #[test]
    fn harness_runs_to_completion() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        sample_bench(&mut c);
    }
}
