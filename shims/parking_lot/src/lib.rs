//! Offline stand-in for the `parking_lot` crate (no network / registry in
//! the build environment). Wraps `std::sync` primitives and exposes the
//! parking_lot calling convention: `lock()` returns the guard directly, and
//! poisoning is ignored (parking_lot has no poisoning).

/// Mutex with the parking_lot API over `std::sync::Mutex`.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// RwLock with the parking_lot API over `std::sync::RwLock`.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
