//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach a registry, so this crate implements
//! the subset of proptest this workspace uses: the `proptest!` macro with
//! `x in strategy` / `x: Type` argument forms, an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` inner attribute,
//! range / tuple / `collection::vec` strategies, and the `prop_assert*`
//! macros.
//!
//! Differences from real proptest, acceptable for this workspace:
//!
//! * no shrinking — a failing case reports its inputs via the panic message
//!   (every generated binding is `Debug`-printed on failure);
//! * sampling is deterministic per `(test name, case index)`, so failures
//!   reproduce exactly without a persistence file.

/// Strategies: how to sample a value of some type from a [`test_runner::TestRng`].
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                    lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = rng.next_unit_f64();
                    let v = self.start as f64 + (self.end as f64 - self.start as f64) * unit;
                    // Clamp: rounding at the type boundary must not escape the range.
                    (v as $t).clamp(self.start, self.end)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// Strategy producing a constant value (used for `Just`-style plumbing).
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive-exclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// is drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Types drawable via the `name: Type` argument form of `proptest!`.
pub mod arbitrary {
    use crate::test_runner::TestRng;

    /// Produces an unconstrained random value of `Self`.
    pub trait Arbitrary: Sized {
        /// Draws one value.
        fn arbitrary_sample(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_sample(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_sample(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Test-loop configuration and the deterministic RNG.
pub mod test_runner {
    /// Subset of proptest's run configuration: how many cases to draw.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic splitmix64 generator, seeded per `(test, case)` so any
    /// failing case replays without a persistence file.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case number `case` of the named test.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            Self {
                state: h ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        /// Next raw 64-bit value (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)` with 53 bits of entropy.
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// Defines `#[test]` functions that run their body over many random cases.
///
/// Supported argument forms: `name in <strategy-expr>` and `name: Type`
/// (where `Type: Arbitrary`). An optional leading
/// `#![proptest_config(<expr>)]` sets the case count for every function in
/// the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands each `fn` into a `#[test]`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __bt_cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __bt_case in 0..__bt_cfg.cases {
                let mut __bt_rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), __bt_case);
                $crate::__proptest_body!(__bt_rng, __bt_case, ($($args)*), (), $body);
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: binds one argument per step, then
/// runs the body inside a closure so failures report the sampled inputs.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    // All arguments bound: run the body, reporting inputs on panic.
    ($rng:ident, $case:ident, (), ($($bound:ident)*), $body:block) => {{
        let __bt_inputs = format!(
            concat!("case {}", $(concat!(" ", stringify!($bound), "={:?}"),)*),
            $case, $($bound),*
        );
        let __bt_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| $body));
        if let Err(payload) = __bt_result {
            eprintln!("proptest failure inputs: {}", __bt_inputs);
            std::panic::resume_unwind(payload);
        }
    }};
    ($rng:ident, $case:ident, ($x:ident in $strat:expr), ($($bound:ident)*), $body:block) => {
        $crate::__proptest_body!($rng, $case, ($x in $strat,), ($($bound)*), $body)
    };
    ($rng:ident, $case:ident, ($x:ident in $strat:expr, $($rest:tt)*), ($($bound:ident)*), $body:block) => {
        let $x = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_body!($rng, $case, ($($rest)*), ($($bound)* $x), $body);
    };
    ($rng:ident, $case:ident, ($x:ident : $ty:ty), ($($bound:ident)*), $body:block) => {
        $crate::__proptest_body!($rng, $case, ($x : $ty,), ($($bound)*), $body)
    };
    ($rng:ident, $case:ident, ($x:ident : $ty:ty, $($rest:tt)*), ($($bound:ident)*), $body:block) => {
        let $x = <$ty as $crate::arbitrary::Arbitrary>::arbitrary_sample(&mut $rng);
        $crate::__proptest_body!($rng, $case, ($($rest)*), ($($bound)* $x), $body);
    };
}

/// Asserts a condition inside a property (panics with context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Rejects the current case when the assumption does not hold. Unlike real
/// proptest this does not draw a replacement case — the rejected case simply
/// passes — which is fine at the case counts this workspace uses.
///
/// Expands to an early `return` from the per-case closure, so it must be
/// called from the property body itself, not from a nested closure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

pub mod prelude {
    //! Drop-in for `proptest::prelude::*`.
    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges_stay_in_bounds", 0);
        for _ in 0..1000 {
            let v = (3usize..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.0f32..2.0).sample(&mut rng);
            assert!((-2.0..=2.0).contains(&f));
            let b = (0u16..=0xFFFF).sample(&mut rng);
            let _ = b; // full range: any value is valid
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::for_case("vec_strategy_respects_size", 0);
        for _ in 0..200 {
            let v = crate::collection::vec((1usize..40, 0u64..10), 1..8).sample(&mut rng);
            assert!((1..8).contains(&v.len()));
            for (a, b) in &v {
                assert!((1..40).contains(a));
                assert!(*b < 10);
            }
        }
    }

    #[test]
    fn deterministic_per_case() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case("x", 7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case("x", 7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        fn macro_binds_all_forms(
            m in 1usize..48,
            flag: bool,
            alpha in -2.0f32..2.0,
            shapes in crate::collection::vec((1usize..40, 1usize..40), 1..8),
        ) {
            prop_assert!((1..48).contains(&m));
            prop_assert!((-2.0..=2.0).contains(&alpha));
            prop_assert!(!shapes.is_empty() && shapes.len() < 8);
            prop_assert_eq!(flag as u8 <= 1, true);
        }
    }
}
