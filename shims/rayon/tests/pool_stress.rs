//! Stress and panic-discipline tests for the persistent pool.
//!
//! Three properties under fire:
//!
//! 1. **Nesting from outside**: several external OS threads each drive
//!    `par_iter` launches whose items themselves `join` (and `join` again
//!    inside that) — the regime where a naive pool deadlocks because every
//!    worker is blocked waiting on work only another blocked worker could
//!    run. Our workers execute other pool jobs while they wait, so all
//!    launches complete.
//! 2. **Panic isolation**: a panicking task poisons only its own launch —
//!    concurrent healthy launches and every later launch see a fully
//!    functional pool.
//! 3. **Deterministic propagation**: when several tasks of one launch
//!    panic, the rethrown payload is a function of the launch structure
//!    (lowest item index / earliest spawn / the `a` side of `join`), never
//!    of which thread happened to unwind first. Each case is repeated many
//!    times to make a timing-dependent implementation actually fail.

use rayon::prelude::*;
use std::panic::catch_unwind;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Widens the pool for this test binary (unless the harness pinned a width
/// via the environment) before anything touches the lazy global.
fn ensure_pool() {
    static INIT: std::sync::Once = std::sync::Once::new();
    INIT.call_once(|| {
        if std::env::var("BYTE_POOL_THREADS").is_err() {
            std::env::set_var("BYTE_POOL_THREADS", "4");
        }
    });
}

fn payload_str(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string payload>"
    }
}

#[test]
fn nested_join_inside_par_iter_from_many_outer_threads() {
    ensure_pool();
    // 4 external threads × repeated launches × 48 items × two levels of
    // nested join: far more logical tasks than workers, all funnelled
    // through one shared pool.
    std::thread::scope(|s| {
        for t in 0..4u64 {
            s.spawn(move || {
                for _round in 0..8 {
                    let out: Vec<u64> = (0..48usize)
                        .into_par_iter()
                        .map(|i| {
                            let (a, b) = rayon::join(
                                || (i as u64 + t) * 3,
                                || {
                                    let (x, y) = rayon::join(|| i as u64 * 2, || t + 1);
                                    x + y
                                },
                            );
                            a + b
                        })
                        .collect();
                    for (i, &v) in out.iter().enumerate() {
                        assert_eq!(v, (i as u64 + t) * 3 + i as u64 * 2 + t + 1);
                    }
                }
            });
        }
    });
}

#[test]
fn panicking_launch_poisons_only_itself() {
    ensure_pool();
    let stop = AtomicBool::new(false);
    let healthy_rounds = AtomicUsize::new(0);
    std::thread::scope(|s| {
        // A healthy launcher hammers the pool for the whole duration of the
        // poison barrage from the other thread.
        s.spawn(|| {
            while !stop.load(Ordering::Acquire) {
                let out: Vec<usize> = (0..64usize).into_par_iter().map(|i| i * 2).collect();
                assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
                healthy_rounds.fetch_add(1, Ordering::Relaxed);
            }
        });
        // At least 20 poison launches, and keep going until the healthy
        // thread has provably completed a round *concurrently* with them
        // (on a single-CPU host it may not get scheduled for a while).
        let mut poison_rounds = 0;
        while poison_rounds < 20 || healthy_rounds.load(Ordering::Relaxed) == 0 {
            let err = catch_unwind(|| {
                (0..32usize).into_par_iter().for_each(|i| {
                    if i % 5 == 2 {
                        panic!("poison");
                    }
                });
            });
            assert!(err.is_err(), "poisoned launch must rethrow");
            poison_rounds += 1;
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Release);
    });
    assert!(healthy_rounds.load(Ordering::Relaxed) > 0);
    // And the pool is still fully functional afterwards, nesting included.
    let out: Vec<usize> = (0..100usize)
        .into_par_iter()
        .map(|i| {
            let (a, b) = rayon::join(|| i, || 1usize);
            a + b
        })
        .collect();
    assert_eq!(out, (1..=100).collect::<Vec<_>>());
}

#[test]
fn par_iter_panic_propagates_lowest_index_deterministically() {
    ensure_pool();
    for round in 0..50 {
        let err = catch_unwind(|| {
            (0..16usize).into_par_iter().for_each(|i| {
                if i == 3 {
                    panic!("item-three");
                }
                if i == 7 {
                    panic!("item-seven");
                }
            });
        })
        .expect_err("launch with panicking items must rethrow");
        assert_eq!(
            payload_str(&*err),
            "item-three",
            "round {round}: the lowest panicking index must win"
        );
    }
}

#[test]
fn scope_panic_propagates_earliest_spawn_deterministically() {
    ensure_pool();
    for round in 0..50 {
        let err = catch_unwind(|| {
            rayon::scope(|s| {
                for seq in 0..10 {
                    s.spawn(move || {
                        if seq == 2 {
                            panic!("seq-two");
                        }
                        if seq == 8 {
                            panic!("seq-eight");
                        }
                    });
                }
            });
        })
        .expect_err("scope with panicking spawns must rethrow");
        assert_eq!(
            payload_str(&*err),
            "seq-two",
            "round {round}: the earliest panicking spawn must win"
        );
    }
}

#[test]
fn scope_root_panic_wins_over_spawned_tasks() {
    ensure_pool();
    for _ in 0..20 {
        let err = catch_unwind(|| {
            rayon::scope(|s| {
                s.spawn(|| panic!("task-panic"));
                panic!("root-panic");
            });
        })
        .expect_err("scope must rethrow");
        assert_eq!(payload_str(&*err), "root-panic");
    }
}

#[test]
fn join_panic_prefers_the_a_side() {
    ensure_pool();
    for _ in 0..50 {
        let err =
            catch_unwind(|| rayon::join(|| panic!("a-side"), || panic!("b-side"))).expect_err("join must rethrow");
        assert_eq!(payload_str(&*err), "a-side", "a's panic wins when both sides panic");
        let err = catch_unwind(|| rayon::join(|| 1, || panic!("b-side"))).expect_err("join must rethrow");
        assert_eq!(payload_str(&*err), "b-side");
    }
}
