//! Offline stand-in for the `rayon` crate, backed by a **persistent
//! work-stealing pool**.
//!
//! The build environment has no network access and no registry cache, so
//! the real rayon can never be fetched. This crate implements the exact
//! parallel subset the workspace uses — `par_iter`, `par_chunks`,
//! `par_chunks_mut`, `into_par_iter` (ranges and `Vec`), the `zip` /
//! `enumerate` / `map` / `for_each` / `collect` adapters, plus [`join`]
//! and [`scope`] — on top of the in-tree pool in [`mod@pool`] (lazily
//! spawned workers, per-worker Chase–Lev deques, eventcount parking; see
//! that module's docs for the full protocol).
//!
//! The previous revision of this shim spawned fresh OS threads on *every*
//! parallel call, so the many small memory-bound kernels (add-bias +
//! LayerNorm, add-bias + GELU, pack/unpack) paid thread-creation latency
//! that dwarfed their work — the per-launch overhead ByteTransformer's
//! fused, back-to-back GPU kernels exist to avoid. Now a launch is a
//! stack descriptor plus `width − 1` two-word tokens pushed to persistent
//! workers: no thread creation, no per-launch allocation on the submit
//! path, and worker thread-locals (e.g. `bt-gemm`'s scratch arenas)
//! survive across launches.
//!
//! Semantics match rayon where it matters for this workspace:
//!
//! * every closure runs exactly once per item, and `map` preserves item
//!   order in its output;
//! * closures must be `Sync` (shared across workers by reference);
//! * nested parallel calls are real fork-join on the shared pool (a
//!   waiting worker executes other pool jobs, so nesting cannot deadlock
//!   or spawn unbounded threads);
//! * scheduling is dynamic: lanes pull the next unclaimed item from a
//!   shared cursor, so uneven per-item cost (e.g. grouped-GEMM CTAs with
//!   different tile counts) balances the same way rayon's work stealing
//!   would.
//!
//! Beyond rayon's API there are two test hooks: [`sequential`] forces
//! every parallel entry point inline on the calling thread (the
//! single-thread reference for differential tests), and
//! [`current_worker_id`] exposes the stable worker index. The pool width
//! is `BYTE_POOL_THREADS` (default: host parallelism).

mod deque;
mod job;
pub mod pool;

pub use pool::{current_num_threads, current_worker_id, join, scope, sequential, Scope};

#[cfg(feature = "interleave")]
pub use deque::interleave::seed_thread;

/// Runs `f` over every item on the pool, returning results in item order.
fn run<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n < 2 || pool::current_num_threads() < 2 {
        return items.into_iter().map(f).collect();
    }

    // Hand the items to the lanes by index: slot `i` is read exactly once
    // (the launch cursor claims each index once) and result slot `i` is
    // written exactly once, so the raw-pointer sharing is disjoint.
    struct SharedItems<T>(*const T);
    unsafe impl<T: Send> Sync for SharedItems<T> {}
    impl<T> SharedItems<T> {
        // Methods (not field reads) so the closure captures the Sync
        // wrapper, not the raw pointer field.
        fn at(&self, i: usize) -> *const T {
            unsafe { self.0.add(i) }
        }
    }
    struct SharedResults<R>(*mut Option<R>);
    unsafe impl<R: Send> Sync for SharedResults<R> {}
    impl<R> SharedResults<R> {
        fn at(&self, i: usize) -> *mut Option<R> {
            unsafe { self.0.add(i) }
        }
    }

    let mut items = items;
    let items_ptr = SharedItems(items.as_ptr());
    // Elements are moved out via ptr::read; len 0 keeps the eventual Vec
    // drop (including on unwind) from double-dropping them while still
    // freeing the allocation.
    unsafe { items.set_len(0) };
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let results_ptr = SharedResults(results.as_mut_ptr());

    pool::parallel_for(n, &|i| {
        let item = unsafe { std::ptr::read(items_ptr.at(i)) };
        let r = f(item);
        unsafe { *results_ptr.at(i) = Some(r) };
    });

    results
        .into_iter()
        .map(|r| r.expect("launch drained every item"))
        .collect()
}

/// A materialized parallel iterator: adapters are cheap sequential
/// transforms, and `map` / `for_each` fan the items out over the pool.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Pairs items positionally with another parallel iterator.
    pub fn zip<U: Send>(self, other: ParIter<U>) -> ParIter<(T, U)> {
        ParIter {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    /// Attaches each item's index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Applies `f` to every item in parallel, preserving order.
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParIter {
            items: run(self.items, f),
        }
    }

    /// Consumes every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        run(self.items, f);
    }

    /// Gathers the items (already in order) into a collection.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// `par_chunks` / `par_chunks_mut` on slices.
pub trait ParallelSlice<T: Send> {
    /// Parallel iterator over `size`-element chunks.
    fn par_chunks(&self, size: usize) -> ParIter<&[T]>;
    /// Parallel iterator over mutable `size`-element chunks.
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]>;
    /// Parallel iterator over element references.
    fn par_iter(&self) -> ParIter<&T>;
}

impl<T: Send + Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ParIter<&[T]> {
        ParIter {
            items: self.chunks(size).collect(),
        }
    }

    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]> {
        ParIter {
            items: self.chunks_mut(size).collect(),
        }
    }

    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `into_par_iter` on owned collections and ranges.
pub trait IntoParallelIterator {
    /// Item type produced by the iterator.
    type Item: Send;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

pub mod prelude {
    //! Drop-in for `rayon::prelude::*`.
    pub use crate::{IntoParallelIterator, ParIter, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    /// Widens the pool for this test binary (unless the harness pinned a
    /// width via the environment) before anything touches the lazy global.
    fn ensure_pool() {
        static INIT: std::sync::Once = std::sync::Once::new();
        INIT.call_once(|| {
            if std::env::var("BYTE_POOL_THREADS").is_err() {
                std::env::set_var("BYTE_POOL_THREADS", "4");
            }
        });
    }

    #[test]
    fn chunks_mut_covers_all_elements() {
        ensure_pool();
        let mut v = vec![0u32; 1000];
        v.par_chunks_mut(7).enumerate().for_each(|(i, chunk)| {
            for x in chunk {
                *x = i as u32;
            }
        });
        assert_eq!(v[0], 0);
        assert_eq!(v[999], 142);
        assert_eq!(v[7], 1);
    }

    #[test]
    fn map_preserves_order() {
        ensure_pool();
        let out: Vec<usize> = (0..100).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn zip_pairs_positionally() {
        ensure_pool();
        let a = [1, 2, 3];
        let mut out = vec![0; 3];
        out.par_chunks_mut(1)
            .zip(a.par_iter())
            .for_each(|(o, &x)| o[0] = x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn nested_calls_do_not_deadlock() {
        ensure_pool();
        let mut v = vec![0u32; 64];
        v.par_chunks_mut(8).for_each(|chunk| {
            chunk.par_chunks_mut(2).for_each(|c| c.fill(1));
        });
        assert!(v.iter().all(|&x| x == 1));
    }

    #[test]
    fn join_returns_both_results() {
        ensure_pool();
        let (a, b) = crate::join(|| 6 * 7, || "forty-two");
        assert_eq!(a, 42);
        assert_eq!(b, "forty-two");
    }

    #[test]
    fn scope_tasks_all_run_and_may_borrow() {
        ensure_pool();
        let counter = std::sync::atomic::AtomicUsize::new(0);
        crate::scope(|s| {
            for _ in 0..16 {
                s.spawn(|| {
                    counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 16);
    }

    #[test]
    fn sequential_mode_runs_inline_in_order() {
        ensure_pool();
        let order = std::sync::Mutex::new(Vec::new());
        crate::sequential(|| {
            (0..32).into_par_iter().for_each(|i| {
                order.lock().unwrap().push(i);
            });
        });
        assert_eq!(*order.lock().unwrap(), (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn workers_persist_across_launches() {
        ensure_pool();
        if crate::current_num_threads() < 2 {
            // Width pinned to 1: everything runs inline on the caller.
            crate::scope(|s| s.spawn(|| assert!(crate::current_worker_id().is_none())));
            return;
        }
        // Spawns from an external thread land in the injector, which only
        // pool workers drain — so the recorded ids are genuinely workers.
        let ids_of = || {
            let ids = std::sync::Mutex::new(std::collections::HashSet::new());
            crate::scope(|s| {
                for _ in 0..8 {
                    s.spawn(|| {
                        assert!(crate::current_worker_id().is_some());
                        ids.lock().unwrap().insert(std::thread::current().id());
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    });
                }
            });
            ids.into_inner().unwrap()
        };
        let first = ids_of();
        let second = ids_of();
        assert!(!first.is_empty() && !second.is_empty());
        assert!(
            first.intersection(&second).next().is_some(),
            "launches must reuse persistent workers, got disjoint thread sets"
        );
    }
}
