//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no network access and no registry cache, so the
//! real rayon can never be fetched. This crate implements the exact parallel
//! iterator subset the workspace uses — `par_iter`, `par_chunks`,
//! `par_chunks_mut`, `into_par_iter` (ranges and `Vec`), plus the `zip` /
//! `enumerate` / `map` / `for_each` / `collect` adapters — on top of
//! `std::thread::scope`.
//!
//! Semantics match rayon where it matters for this workspace:
//!
//! * every closure runs exactly once per item, and `map` preserves item order
//!   in its output;
//! * closures must be `Sync` (shared across workers by reference);
//! * nested parallel calls from inside a worker run sequentially instead of
//!   spawning further threads (rayon achieves the same end with one shared
//!   pool; here it also bounds thread creation under nested `par_*` calls).
//!
//! Scheduling is dynamic: workers pull the next unclaimed item from a shared
//! cursor, so uneven per-item cost (e.g. grouped-GEMM CTAs with different
//! tile counts) balances the same way rayon's work stealing would.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Number of worker threads a parallel call may use.
fn pool_width() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs `f` over every item, in parallel when profitable, returning results
/// in item order.
fn run<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let width = pool_width().min(n);
    if width <= 1 || IN_POOL.with(|c| c.get()) {
        return items.into_iter().map(f).collect();
    }

    // Each slot is taken exactly once: workers advance a shared cursor and
    // claim the item at that index.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));

    std::thread::scope(|s| {
        for _ in 0..width {
            s.spawn(|| {
                IN_POOL.with(|c| c.set(true));
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = slots[i]
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .take()
                        .expect("slot claimed twice");
                    local.push((i, f(item)));
                }
                results.lock().unwrap_or_else(|e| e.into_inner()).extend(local);
            });
        }
    });

    let mut pairs = results.into_inner().unwrap_or_else(|e| e.into_inner());
    pairs.sort_unstable_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, r)| r).collect()
}

/// A materialized parallel iterator: adapters are cheap sequential
/// transforms, and `map` / `for_each` fan the items out over worker threads.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Pairs items positionally with another parallel iterator.
    pub fn zip<U: Send>(self, other: ParIter<U>) -> ParIter<(T, U)> {
        ParIter {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    /// Attaches each item's index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Applies `f` to every item in parallel, preserving order.
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParIter {
            items: run(self.items, f),
        }
    }

    /// Consumes every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        run(self.items, f);
    }

    /// Gathers the items (already in order) into a collection.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// `par_chunks` / `par_chunks_mut` on slices.
pub trait ParallelSlice<T: Send> {
    /// Parallel iterator over `size`-element chunks.
    fn par_chunks(&self, size: usize) -> ParIter<&[T]>;
    /// Parallel iterator over mutable `size`-element chunks.
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]>;
    /// Parallel iterator over element references.
    fn par_iter(&self) -> ParIter<&T>;
}

impl<T: Send + Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ParIter<&[T]> {
        ParIter {
            items: self.chunks(size).collect(),
        }
    }

    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]> {
        ParIter {
            items: self.chunks_mut(size).collect(),
        }
    }

    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `into_par_iter` on owned collections and ranges.
pub trait IntoParallelIterator {
    /// Item type produced by the iterator.
    type Item: Send;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

pub mod prelude {
    //! Drop-in for `rayon::prelude::*`.
    pub use crate::{IntoParallelIterator, ParIter, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunks_mut_covers_all_elements() {
        let mut v = vec![0u32; 1000];
        v.par_chunks_mut(7).enumerate().for_each(|(i, chunk)| {
            for x in chunk {
                *x = i as u32;
            }
        });
        assert_eq!(v[0], 0);
        assert_eq!(v[999], 142);
        assert_eq!(v[7], 1);
    }

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..100).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn zip_pairs_positionally() {
        let a = [1, 2, 3];
        let mut out = vec![0; 3];
        out.par_chunks_mut(1)
            .zip(a.par_iter())
            .for_each(|(o, &x)| o[0] = x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn nested_calls_do_not_deadlock() {
        let mut v = vec![0u32; 64];
        v.par_chunks_mut(8).for_each(|chunk| {
            chunk.par_chunks_mut(2).for_each(|c| c.fill(1));
        });
        assert!(v.iter().all(|&x| x == 1));
    }
}
