//! In-tree Chase–Lev work-stealing deque (fixed capacity, overflow
//! signalled to the caller).
//!
//! One deque per pool worker: the owner pushes and pops jobs at the
//! *bottom* (LIFO — the hot fork-join path stays cache-local), thieves
//! steal from the *top* (FIFO — the oldest, usually largest work moves).
//! This is the algorithm of Chase & Lev, "Dynamic Circular Work-Stealing
//! Deque", with the memory-ordering discipline of Lê et al., "Correct and
//! Efficient Work-Stealing for Weak Memory Models" — all orderings are
//! `SeqCst`, which is strictly stronger than the published minimum and
//! keeps the in-tree proof obligation small.
//!
//! Instead of growing the circular buffer (which requires deferred
//! reclamation so in-flight stealers never read freed memory), the buffer
//! is **fixed-capacity** and [`Deque::push`] returns the job back when
//! full; the pool overflows it to the shared injector queue. That removes
//! the entire reclamation problem: a slot is only rewritten after `top`
//! has advanced past its previous occupant, and any stealer still racing
//! on the old value is forced to fail its CAS (`top` is monotonic, so the
//! expected value can never recur).
//!
//! With the `interleave` feature the steal/pop windows gain seeded yield
//! points ([`interleave::yield_point`]) so tests can perturb thread
//! schedules through the race windows deterministically per seed — a
//! lightweight, loom-style exploration of the steal path.

use crate::job::JobRef;
use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering::SeqCst};

/// Slots per deque. Power of two; overflow goes to the pool injector, so
/// this bounds memory, not correctness.
pub(crate) const DEQUE_CAPACITY: usize = 256;

/// One storage slot: the two words of a [`JobRef`], each word atomic so a
/// racing (and subsequently discarded) stealer read is never UB.
struct Slot {
    data: AtomicUsize,
    exec: AtomicUsize,
}

/// The fixed-capacity Chase–Lev deque.
pub(crate) struct Deque {
    /// Steal end. Monotonically increasing; claimed by CAS.
    top: AtomicIsize,
    /// Owner end. Written only by the owner (except never — stealers only
    /// read it).
    bottom: AtomicIsize,
    slots: Box<[Slot]>,
}

// Raw job pointers move between threads by design; the launch protocols in
// `pool` keep every pointee alive until its job has executed.
unsafe impl Send for Deque {}
unsafe impl Sync for Deque {}

impl Deque {
    pub(crate) fn new() -> Self {
        let slots = (0..DEQUE_CAPACITY)
            .map(|_| Slot {
                data: AtomicUsize::new(0),
                exec: AtomicUsize::new(0),
            })
            .collect();
        Self {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            slots,
        }
    }

    #[inline]
    fn slot(&self, index: isize) -> &Slot {
        // Capacity is a power of two, so masking is the modulo.
        &self.slots[(index as usize) & (DEQUE_CAPACITY - 1)]
    }

    /// Owner-only: push a job at the bottom. Returns the job back when the
    /// deque is full (caller overflows to the injector).
    pub(crate) fn push(&self, job: JobRef) -> Result<(), JobRef> {
        let b = self.bottom.load(SeqCst);
        let t = self.top.load(SeqCst);
        if b - t >= DEQUE_CAPACITY as isize {
            return Err(job);
        }
        let slot = self.slot(b);
        slot.data.store(job.data as usize, SeqCst);
        slot.exec.store(job.exec as usize, SeqCst);
        self.bottom.store(b + 1, SeqCst);
        Ok(())
    }

    /// Owner-only: pop the most recently pushed job (LIFO end).
    pub(crate) fn pop(&self) -> Option<JobRef> {
        let b = self.bottom.load(SeqCst) - 1;
        self.bottom.store(b, SeqCst);
        interleave::yield_point();
        let t = self.top.load(SeqCst);
        if t > b {
            // Already empty: restore and leave.
            self.bottom.store(b + 1, SeqCst);
            return None;
        }
        let job = self.read_slot(b);
        if t < b {
            // More than one element: the bottom one is uncontended.
            return Some(job);
        }
        // t == b: racing stealers for the last element — arbitrate on top.
        let won = self.top.compare_exchange(t, t + 1, SeqCst, SeqCst).is_ok();
        self.bottom.store(b + 1, SeqCst);
        if won {
            Some(job)
        } else {
            None
        }
    }

    /// Any thread: steal the oldest job (FIFO end). `None` means empty *or*
    /// lost a race — callers treat both as "look elsewhere".
    pub(crate) fn steal(&self) -> Option<JobRef> {
        loop {
            let t = self.top.load(SeqCst);
            let b = self.bottom.load(SeqCst);
            if t >= b {
                return None;
            }
            let job = self.read_slot(t);
            interleave::yield_point();
            if self.top.compare_exchange(t, t + 1, SeqCst, SeqCst).is_ok() {
                // The CAS validates the read: the slot can only have been
                // rewritten if top already advanced past `t`, which would
                // have failed this exchange.
                return Some(job);
            }
            // Contended: another thief or the owner took it; retry from a
            // fresh snapshot.
        }
    }

    #[inline]
    fn read_slot(&self, index: isize) -> JobRef {
        let slot = self.slot(index);
        JobRef {
            data: slot.data.load(SeqCst) as *const (),
            exec: unsafe { std::mem::transmute::<usize, unsafe fn(*const ())>(slot.exec.load(SeqCst)) },
        }
    }
}

/// Schedule-perturbation hooks for the loom-style interleaving tests.
///
/// In normal builds [`yield_point`] compiles to nothing. Under the
/// `interleave` feature each call consults a thread-local seeded xorshift
/// stream and, depending on the draw, yields the OS thread or spins —
/// shaking the scheduler through the pop/steal race windows so a given
/// seed explores a reproducible-ish region of interleavings.
pub(crate) mod interleave {
    #[cfg(feature = "interleave")]
    use std::cell::Cell;

    #[cfg(feature = "interleave")]
    thread_local! {
        static SCHEDULE: Cell<u64> = const { Cell::new(0) };
    }

    /// Seeds this thread's perturbation stream (0 disables it).
    #[cfg(feature = "interleave")]
    pub fn seed_thread(seed: u64) {
        SCHEDULE.with(|s| s.set(seed));
    }

    #[cfg(feature = "interleave")]
    #[inline]
    pub(crate) fn yield_point() {
        SCHEDULE.with(|s| {
            let mut x = s.get();
            if x == 0 {
                return;
            }
            // xorshift64* step.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            s.set(x);
            match x % 4 {
                0 => std::thread::yield_now(),
                1 => {
                    for _ in 0..(x % 64) {
                        std::hint::spin_loop();
                    }
                }
                _ => {}
            }
        });
    }

    #[cfg(not(feature = "interleave"))]
    #[inline(always)]
    pub(crate) fn yield_point() {}
}

/// Loom-style interleaving sweep of the steal path: for each seed, an
/// owner (push/pop) and two thieves run with schedule perturbation active
/// at the race-window yield points, and the invariant — every job taken
/// exactly once, none lost, none duplicated — is checked exhaustively.
/// Seeds make a failure reproducible: rerun with the printed seed.
#[cfg(all(test, feature = "interleave"))]
mod interleave_tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;

    fn sweep_one(seed: u64, jobs: usize) {
        fn job(tag: usize) -> JobRef {
            unsafe fn never(_: *const ()) {
                unreachable!();
            }
            JobRef {
                data: tag as *const (),
                exec: never,
            }
        }
        let d = Deque::new();
        let taken = Mutex::new(HashSet::new());
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            let (d, taken, done) = (&d, &taken, &done);
            for thief in 0..2u64 {
                s.spawn(move || {
                    interleave::seed_thread(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (thief + 1));
                    let mut local = Vec::new();
                    loop {
                        if let Some(j) = d.steal() {
                            local.push(j.data as usize);
                        } else if done.load(Ordering::Acquire) && d.steal().is_none() {
                            break;
                        }
                    }
                    let mut g = taken.lock().unwrap();
                    for t in local {
                        assert!(g.insert(t), "seed {seed}: job {t} taken twice");
                    }
                });
            }
            interleave::seed_thread(seed | 1);
            let mut local = Vec::new();
            let mut next = 1usize;
            while next <= jobs {
                if d.push(job(next)).is_ok() {
                    next += 1;
                }
                if next % 2 == 0 {
                    if let Some(j) = d.pop() {
                        local.push(j.data as usize);
                    }
                }
            }
            while let Some(j) = d.pop() {
                local.push(j.data as usize);
            }
            done.store(true, Ordering::Release);
            let mut g = taken.lock().unwrap();
            for t in local {
                assert!(g.insert(t), "seed {seed}: job {t} taken twice");
            }
        });
        let g = taken.lock().unwrap();
        assert_eq!(g.len(), jobs, "seed {seed}: jobs lost");
    }

    #[test]
    fn steal_path_interleaving_sweep() {
        for seed in 1..=64u64 {
            sweep_one(seed, 500);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobRef;

    fn job(tag: usize) -> JobRef {
        unsafe fn never(_: *const ()) {
            unreachable!("test jobs are never executed");
        }
        JobRef {
            data: tag as *const (),
            exec: never,
        }
    }

    #[test]
    fn lifo_for_owner_fifo_for_thief() {
        let d = Deque::new();
        d.push(job(1)).unwrap();
        d.push(job(2)).unwrap();
        d.push(job(3)).unwrap();
        assert_eq!(d.steal().unwrap().data as usize, 1);
        assert_eq!(d.pop().unwrap().data as usize, 3);
        assert_eq!(d.pop().unwrap().data as usize, 2);
        assert!(d.pop().is_none());
        assert!(d.steal().is_none());
    }

    #[test]
    fn overflow_returns_job() {
        let d = Deque::new();
        for i in 0..DEQUE_CAPACITY {
            d.push(job(i + 1)).unwrap();
        }
        let back = d.push(job(999)).unwrap_err();
        assert_eq!(back.data as usize, 999);
        // Draining one slot makes room again.
        assert!(d.steal().is_some());
        d.push(job(999)).unwrap();
    }

    #[test]
    fn concurrent_steal_and_pop_each_job_exactly_once() {
        use std::collections::HashSet;
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Mutex;

        let d = Deque::new();
        let seen = Mutex::new(HashSet::new());
        let done = AtomicBool::new(false);
        const JOBS: usize = 10_000;
        std::thread::scope(|s| {
            // Two thieves hammer the top end.
            for _ in 0..2 {
                s.spawn(|| {
                    let mut local = Vec::new();
                    while !done.load(Ordering::Acquire) {
                        if let Some(j) = d.steal() {
                            local.push(j.data as usize);
                        }
                    }
                    while let Some(j) = d.steal() {
                        local.push(j.data as usize);
                    }
                    let mut g = seen.lock().unwrap();
                    for t in local {
                        assert!(g.insert(t), "job {t} executed twice");
                    }
                });
            }
            // Owner interleaves pushes with pops.
            let mut local = Vec::new();
            let mut next = 1usize;
            while next <= JOBS {
                if d.push(job(next)).is_ok() {
                    next += 1;
                }
                if next.is_multiple_of(3) {
                    if let Some(j) = d.pop() {
                        local.push(j.data as usize);
                    }
                }
            }
            while let Some(j) = d.pop() {
                local.push(j.data as usize);
            }
            done.store(true, Ordering::Release);
            let mut g = seen.lock().unwrap();
            for t in local {
                assert!(g.insert(t), "job {t} executed twice");
            }
        });
        let g = seen.lock().unwrap();
        assert_eq!(g.len(), JOBS, "every job taken exactly once");
    }
}
