//! Type-erased jobs: the two-word unit of work the deques and injector
//! move between threads.
//!
//! A [`JobRef`] is a `(data, exec)` pair — the moral equivalent of rayon's
//! `JobRef`. The pointee lives either on the launching thread's stack
//! (fork-join: [`crate::pool::parallel_for`] descriptors, `join`'s stack
//! job) or on the heap (`scope` spawns). Stack pointees are kept alive by
//! the launch protocol: the launcher never returns until every token or
//! latch has retired, and retiring is the executor's final access.

/// Type-erased pointer to a job plus its executor.
#[derive(Clone, Copy, Debug)]
pub(crate) struct JobRef {
    /// Borrowed pointer to the concrete job structure.
    pub data: *const (),
    /// Executor; must be the `execute` fn of `data`'s concrete type.
    ///
    /// # Safety contract
    /// Implementations must catch unwinds internally — a panic escaping an
    /// executor would tear down its worker thread.
    pub exec: unsafe fn(*const ()),
}

unsafe impl Send for JobRef {}
unsafe impl Sync for JobRef {}

impl JobRef {
    /// Runs the job.
    ///
    /// # Safety
    /// `data` must still be alive and `exec` must match its type.
    #[inline]
    pub(crate) unsafe fn execute(self) {
        (self.exec)(self.data)
    }
}
