//! The persistent work-stealing pool: N pinned workers, per-worker
//! Chase–Lev deques, a shared injector for external launches, and an
//! eventcount parking protocol.
//!
//! ## Topology
//!
//! The pool is a lazily-initialized global (`global`) sized by
//! `BYTE_POOL_THREADS` (default: `available_parallelism`). For a total
//! parallelism of `T` it spawns `T − 1` *workers*; the thread that issues
//! a parallel call is always the remaining lane, so a launch never blocks
//! a thread just to coordinate. Workers live for the process lifetime —
//! this is what lets thread-local state (e.g. `bt-gemm`'s scratch arenas)
//! survive across launches, the property the paper gets from a GPU's
//! persistent SMs.
//!
//! ## Scheduling
//!
//! Each worker owns a fixed-capacity `Deque`: it pushes and pops its own
//! fork-join work LIFO at the bottom while idle workers steal FIFO from
//! the top. Launches from non-pool threads go to a shared injector queue.
//! A worker looks for work in that order — own deque, steal sweep,
//! injector — and parks on the eventcount when all are empty.
//!
//! ## Parking protocol
//!
//! `Sleep` is a classic eventcount: a generation counter under a mutex
//! plus a condvar. A would-be sleeper (1) reads the epoch, (2) re-checks
//! every queue, and only then (3) parks, conditional on the epoch being
//! unchanged. Every producer bumps the epoch *after* publishing work, so
//! the re-check/park pair can never miss a wakeup. Terminal events (a
//! launch's last token retiring, a `join` job completing, a scope's last
//! task finishing) bump it too, so blocked launchers park on the same
//! mechanism instead of spinning.
//!
//! ## Launch protocol (no per-launch allocation)
//!
//! `parallel_for` drives every `par_*` iterator: the launch descriptor
//! (cursor, body, panic slot, token refcount) lives on the launcher's
//! stack, and `width − 1` two-word `JobRef` *tokens* pointing at it are
//! pushed into the queues. Each token claims items from the shared atomic
//! cursor until it runs dry — the same dynamic balancing the old
//! spawn-per-call shim had, minus the thread creation. The launcher runs
//! the same loop inline, then waits for the tokens to retire; a worker
//! launcher executes other pool jobs while it waits (this is what makes
//! nested `par_iter`/`join` deadlock-free), while an external launcher
//! first cancels its still-unclaimed tokens from the injector and then
//! parks. Retiring (`refs -= 1`) is the token's final access to the
//! descriptor, so the stack frame can never be vacated early.
//!
//! ## Panic discipline
//!
//! A panicking task poisons only its own launch, never the pool: every
//! executor catches unwinds, records the payload, and the *launcher*
//! rethrows after the launch fully drains. Propagation is deterministic —
//! lowest item index for `parallel_for`, the `a` side first for [`join`],
//! lowest spawn sequence for [`Scope`] — instead of whichever thread
//! happens to unwind last.

use crate::deque::Deque;
use crate::job::JobRef;
use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::SeqCst};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::Duration;

thread_local! {
    /// `Some(index)` on pool worker threads.
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
    /// Forces every parallel entry point to run inline (see [`sequential`]).
    static FORCE_SEQUENTIAL: Cell<bool> = const { Cell::new(false) };
}

/// Total parallelism `T` from `BYTE_POOL_THREADS` (≥ 1, capped at 256),
/// falling back to the host parallelism.
fn configured_threads() -> usize {
    match std::env::var("BYTE_POOL_THREADS") {
        Ok(v) => v.trim().parse::<usize>().unwrap_or(1).clamp(1, 256),
        Err(_) => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    }
}

/// Eventcount: epoch under a mutex + condvar. See the module docs for the
/// read-epoch / re-check / park discipline that makes it lossless.
struct Sleep {
    epoch: Mutex<u64>,
    cv: Condvar,
}

impl Sleep {
    fn new() -> Self {
        Self {
            epoch: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    fn epoch(&self) -> u64 {
        *self.epoch.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Publishes an event: advances the epoch and wakes every sleeper.
    fn bump(&self) {
        let mut g = self.epoch.lock().unwrap_or_else(|e| e.into_inner());
        *g += 1;
        drop(g);
        self.cv.notify_all();
    }

    /// Parks until the epoch moves past `seen`. The timeout is a pure
    /// safety net — with correct bumps it never fires under load.
    fn wait(&self, seen: u64) {
        let mut g = self.epoch.lock().unwrap_or_else(|e| e.into_inner());
        while *g == seen {
            let (guard, timeout) = self
                .cv
                .wait_timeout(g, Duration::from_millis(100))
                .unwrap_or_else(|e| e.into_inner());
            g = guard;
            if timeout.timed_out() {
                break;
            }
        }
    }
}

struct WorkerState {
    deque: Deque,
}

/// Per-lane telemetry counters (one set per worker plus one for the
/// external lane). Interned once at pool construction so the hot paths
/// never format names; every bump is a single relaxed atomic when
/// recording is on and one branch when it is off.
struct LaneObs {
    launches: &'static bt_obs::Counter,
    local_pops: &'static bt_obs::Counter,
    steals: &'static bt_obs::Counter,
    injector_pops: &'static bt_obs::Counter,
    parks: &'static bt_obs::Counter,
    unparks: &'static bt_obs::Counter,
}

impl LaneObs {
    fn new(lane: &str) -> Self {
        LaneObs {
            launches: bt_obs::counter(&format!("pool.{lane}.launches")),
            local_pops: bt_obs::counter(&format!("pool.{lane}.local_pops")),
            steals: bt_obs::counter(&format!("pool.{lane}.steals")),
            injector_pops: bt_obs::counter(&format!("pool.{lane}.injector_pops")),
            parks: bt_obs::counter(&format!("pool.{lane}.parks")),
            unparks: bt_obs::counter(&format!("pool.{lane}.unparks")),
        }
    }
}

/// Lane label for panic accounting (cold path — formats on demand).
fn lane_name(me: Option<usize>) -> String {
    me.map_or_else(|| "ext".to_string(), |i| format!("worker{i}"))
}

/// The global pool: worker deques, the external-launch injector, and the
/// parking eventcount.
pub(crate) struct Registry {
    workers: Box<[WorkerState]>,
    injector: Mutex<VecDeque<JobRef>>,
    sleep: Sleep,
    /// Total parallelism `T` (= workers + the launching lane).
    threads: usize,
    /// `obs[i]` for worker `i`; `obs[workers.len()]` is the external lane.
    obs: Box<[LaneObs]>,
}

impl Registry {
    /// The [`LaneObs`] for worker `me`, or the external lane when `None`.
    fn lane_obs(&self, me: Option<usize>) -> &LaneObs {
        &self.obs[me.unwrap_or(self.workers.len())]
    }
}

static REGISTRY: OnceLock<&'static Registry> = OnceLock::new();

/// The lazily-initialized global registry. Never torn down: worker
/// threads and their thread-locals persist for the process lifetime.
pub(crate) fn global() -> &'static Registry {
    REGISTRY.get_or_init(|| {
        let threads = configured_threads();
        let n_workers = threads.saturating_sub(1);
        let registry: &'static Registry = Box::leak(Box::new(Registry {
            workers: (0..n_workers).map(|_| WorkerState { deque: Deque::new() }).collect(),
            injector: Mutex::new(VecDeque::new()),
            sleep: Sleep::new(),
            threads,
            obs: (0..=n_workers)
                .map(|i| LaneObs::new(&lane_name(Some(i).filter(|&i| i < n_workers))))
                .collect(),
        }));
        for index in 0..registry.workers.len() {
            std::thread::Builder::new()
                .name(format!("byte-pool-{index}"))
                .spawn(move || worker_main(registry, index))
                .expect("spawn pool worker");
        }
        registry
    })
}

fn worker_main(registry: &'static Registry, index: usize) {
    WORKER_INDEX.with(|w| w.set(Some(index)));
    loop {
        if let Some(job) = registry.find_work(Some(index)) {
            unsafe { job.execute() };
            continue;
        }
        let seen = registry.sleep.epoch();
        // Re-check after reading the epoch: a producer that published
        // work in between has already bumped, so `wait` returns at once.
        if let Some(job) = registry.find_work(Some(index)) {
            unsafe { job.execute() };
            continue;
        }
        let lane = registry.lane_obs(Some(index));
        lane.parks.incr();
        registry.sleep.wait(seen);
        lane.unparks.incr();
    }
}

impl Registry {
    /// Looks for a job: own deque (LIFO), steal sweep over the other
    /// workers (FIFO), then the injector.
    fn find_work(&self, me: Option<usize>) -> Option<JobRef> {
        let lane = self.lane_obs(me);
        if let Some(i) = me {
            if let Some(job) = self.workers[i].deque.pop() {
                lane.local_pops.incr();
                return Some(job);
            }
        }
        let w = self.workers.len();
        if w > 0 {
            let start = me.map_or(0, |i| i + 1);
            for off in 0..w {
                let victim = (start + off) % w;
                if Some(victim) == me {
                    continue;
                }
                if let Some(job) = self.workers[victim].deque.steal() {
                    lane.steals.incr();
                    return Some(job);
                }
            }
        }
        let job = self.injector.lock().unwrap_or_else(|e| e.into_inner()).pop_front();
        if job.is_some() {
            lane.injector_pops.incr();
        }
        job
    }

    /// Publishes `count` copies of `job`: onto the caller's own deque when
    /// called from a worker (overflow spills to the injector), else onto
    /// the injector. Bumps the eventcount once at the end.
    fn submit_n(&self, job: JobRef, count: usize) {
        let me = WORKER_INDEX.with(|w| w.get());
        let mut spill = 0usize;
        if let Some(i) = me {
            for _ in 0..count {
                if self.workers[i].deque.push(job).is_err() {
                    spill += 1;
                }
            }
        } else {
            spill = count;
        }
        if spill > 0 {
            let mut inj = self.injector.lock().unwrap_or_else(|e| e.into_inner());
            for _ in 0..spill {
                inj.push_back(job);
            }
        }
        self.sleep.bump();
    }

    /// Removes still-queued copies of `job` (by identity) from the
    /// injector, returning how many were cancelled.
    fn cancel_injected(&self, data: *const ()) -> usize {
        let mut inj = self.injector.lock().unwrap_or_else(|e| e.into_inner());
        let before = inj.len();
        inj.retain(|j| !std::ptr::eq(j.data, data));
        before - inj.len()
    }

    /// Blocks until `cond` holds. A worker keeps executing pool jobs while
    /// it waits (nested fork-join stays deadlock-free); an external thread
    /// parks on the eventcount.
    fn wait_until(&self, cond: &dyn Fn() -> bool) {
        let me = WORKER_INDEX.with(|w| w.get());
        while !cond() {
            if me.is_some() {
                if let Some(job) = self.find_work(me) {
                    unsafe { job.execute() };
                    continue;
                }
            }
            let seen = self.sleep.epoch();
            if cond() {
                return;
            }
            if me.is_some() {
                if let Some(job) = self.find_work(me) {
                    unsafe { job.execute() };
                    continue;
                }
            }
            let lane = self.lane_obs(me);
            lane.parks.incr();
            self.sleep.wait(seen);
            lane.unparks.incr();
        }
    }
}

/// First-panic store: keeps the payload with the lowest key (item index /
/// spawn sequence), making propagation independent of thread timing.
struct PanicStore {
    slot: Mutex<Option<(usize, Box<dyn Any + Send>)>>,
    armed: AtomicBool,
}

impl PanicStore {
    fn new() -> Self {
        Self {
            slot: Mutex::new(None),
            armed: AtomicBool::new(false),
        }
    }

    fn record(&self, key: usize, payload: Box<dyn Any + Send>) {
        // Cold path: a task panicked. Attribute it to the unwinding lane.
        bt_obs::counter(&format!("pool.{}.panics", lane_name(WORKER_INDEX.with(|w| w.get())))).incr();
        let mut g = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        match &*g {
            Some((k, _)) if *k <= key => {}
            _ => *g = Some((key, payload)),
        }
        self.armed.store(true, SeqCst);
    }

    fn rethrow_if_armed(&self) {
        if self.armed.load(SeqCst) {
            let payload = self
                .slot
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("armed panic store holds a payload");
            resume_unwind(payload.1);
        }
    }
}

/// Total parallelism of the pool (`BYTE_POOL_THREADS` or host CPUs).
pub fn current_num_threads() -> usize {
    global().threads
}

/// Index of the current pool worker (`None` on external threads,
/// including any thread currently inside [`sequential`]). Stable for the
/// life of the process — suitable for keying per-worker caches.
pub fn current_worker_id() -> Option<usize> {
    WORKER_INDEX.with(|w| w.get())
}

/// Runs `f` with every parallel entry point (`par_*`, [`join`],
/// [`scope`]) executing inline on the calling thread, in item order. The
/// single-thread reference mode of the differential test harness.
pub fn sequential<R>(f: impl FnOnce() -> R) -> R {
    struct Guard(bool);
    impl Drop for Guard {
        fn drop(&mut self) {
            FORCE_SEQUENTIAL.with(|s| s.set(self.0));
        }
    }
    let _guard = FORCE_SEQUENTIAL.with(|s| {
        let prev = s.get();
        s.set(true);
        Guard(prev)
    });
    f()
}

/// True when parallel execution is both possible and profitable for `n`
/// items.
fn parallel_enabled(n: usize) -> bool {
    n >= 2 && !FORCE_SEQUENTIAL.with(|s| s.get()) && global().threads >= 2
}

// ---------------------------------------------------------------------------
// parallel_for
// ---------------------------------------------------------------------------

/// Stack-resident launch descriptor shared (by raw pointer) with every
/// token of one `parallel_for`.
struct ForLaunch<'a> {
    cursor: AtomicUsize,
    n: usize,
    body: &'a (dyn Fn(usize) + Sync),
    panic: PanicStore,
    /// Outstanding tokens. Decrementing this is a token's final access.
    refs: AtomicUsize,
}

impl ForLaunch<'_> {
    /// One lane: claim items off the shared cursor until it runs dry.
    /// Panics are caught per item and recorded by index, so the launch
    /// always drains completely.
    fn run_lane(&self) {
        loop {
            let i = self.cursor.fetch_add(1, SeqCst);
            if i >= self.n {
                return;
            }
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (self.body)(i))) {
                self.panic.record(i, payload);
            }
        }
    }
}

unsafe fn for_token_exec(data: *const ()) {
    let launch = unsafe { &*(data as *const ForLaunch<'_>) };
    launch.run_lane();
    // Final access: after this decrement the launcher may return and the
    // descriptor's stack frame may be gone.
    if launch.refs.fetch_sub(1, SeqCst) == 1 {
        global().sleep.bump();
    }
}

/// Runs `body(0..n)` across the pool. Items are claimed dynamically from
/// a shared cursor (uneven per-item cost balances via work stealing); the
/// caller is always one of the lanes. Panics rethrow deterministically:
/// the panicking item with the lowest index wins.
pub(crate) fn parallel_for(n: usize, body: &(dyn Fn(usize) + Sync)) {
    if n == 0 {
        return;
    }
    if !parallel_enabled(n) {
        for i in 0..n {
            body(i);
        }
        return;
    }
    let registry = global();
    let _span = bt_obs::span!("pool.parallel_for");
    registry.lane_obs(WORKER_INDEX.with(|w| w.get())).launches.incr();
    let width = registry.threads.min(n);
    let tokens = width - 1;
    let launch = ForLaunch {
        cursor: AtomicUsize::new(0),
        n,
        body,
        panic: PanicStore::new(),
        refs: AtomicUsize::new(tokens),
    };
    let job = JobRef {
        data: &launch as *const ForLaunch<'_> as *const (),
        exec: for_token_exec,
    };
    registry.submit_n(job, tokens);
    launch.run_lane();
    // External launchers reclaim tokens nobody picked up; worker
    // launchers get theirs back through their own deque inside
    // `wait_until`'s find_work loop.
    if WORKER_INDEX.with(|w| w.get()).is_none() {
        let cancelled = registry.cancel_injected(job.data);
        if cancelled > 0 && launch.refs.fetch_sub(cancelled, SeqCst) == cancelled {
            registry.sleep.bump();
        }
    }
    registry.wait_until(&|| launch.refs.load(SeqCst) == 0);
    launch.panic.rethrow_if_armed();
}

// ---------------------------------------------------------------------------
// join
// ---------------------------------------------------------------------------

/// Stack job for the `b` side of a [`join`].
struct JoinJob<B, RB> {
    func: Mutex<Option<B>>,
    result: Mutex<Option<std::thread::Result<RB>>>,
    done: AtomicBool,
}

impl<B, RB> JoinJob<B, RB>
where
    B: FnOnce() -> RB,
{
    fn run(&self) {
        let f = self
            .func
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("join job claimed twice");
        let r = catch_unwind(AssertUnwindSafe(f));
        *self.result.lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
        self.done.store(true, SeqCst);
    }

    unsafe fn exec(data: *const ()) {
        let job = unsafe { &*(data as *const Self) };
        job.run();
        global().sleep.bump();
    }
}

/// Potentially-parallel fork-join: runs `a` on the calling thread while
/// `b` is offered to the pool; if nobody stole `b`, the caller runs it
/// inline after `a`. Panics propagate deterministically — `a`'s panic
/// wins over `b`'s, and both sides always run to completion first.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if !parallel_enabled(2) {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    let registry = global();
    let job = JoinJob::<B, RB> {
        func: Mutex::new(Some(b)),
        result: Mutex::new(None),
        done: AtomicBool::new(false),
    };
    let job_ref = JobRef {
        data: &job as *const JoinJob<B, RB> as *const (),
        exec: JoinJob::<B, RB>::exec,
    };
    registry.submit_n(job_ref, 1);
    let ra = catch_unwind(AssertUnwindSafe(a));

    let me = WORKER_INDEX.with(|w| w.get());
    if let Some(i) = me {
        // LIFO discipline: our job is the bottom-most unless stolen.
        // Anything above it was left by `a` and is executed on the way.
        while !job.done.load(SeqCst) {
            match registry.workers[i].deque.pop() {
                Some(j) if std::ptr::eq(j.data, job_ref.data) => {
                    job.run();
                    break;
                }
                Some(j) => unsafe { j.execute() },
                None => break, // stolen — fall through to the wait loop
            }
        }
    } else if registry.cancel_injected(job_ref.data) == 1 {
        job.run();
    }
    registry.wait_until(&|| job.done.load(SeqCst));

    let rb = job
        .result
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .take()
        .expect("join job completed without a result");
    match (ra, rb) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        (Err(pa), _) => resume_unwind(pa),
        (_, Err(pb)) => resume_unwind(pb),
    }
}

// ---------------------------------------------------------------------------
// scope
// ---------------------------------------------------------------------------

/// A fork-join scope: tasks spawned on it may borrow from the enclosing
/// stack frame (`'scope`), and [`scope`] does not return until every one
/// of them has finished.
pub struct Scope<'scope> {
    pending: AtomicUsize,
    next_seq: AtomicUsize,
    panic: PanicStore,
    _marker: std::marker::PhantomData<&'scope mut &'scope ()>,
}

/// Heap job for one scope spawn.
struct ScopeJob<F> {
    scope: *const Scope<'static>,
    seq: usize,
    f: F,
}

impl<F: FnOnce() + Send> ScopeJob<F> {
    unsafe fn exec(data: *const ()) {
        let boxed = unsafe { Box::from_raw(data as *mut Self) };
        let scope = unsafe { &*boxed.scope };
        let seq = boxed.seq;
        if let Err(payload) = catch_unwind(AssertUnwindSafe(boxed.f)) {
            scope.panic.record(seq, payload);
        }
        // Final access to the scope: after this the launcher may return.
        if scope.pending.fetch_sub(1, SeqCst) == 1 {
            global().sleep.bump();
        }
    }
}

impl<'scope> Scope<'scope> {
    /// Spawns a task on the pool. The closure may borrow anything that
    /// outlives the scope. Panics are recorded (not propagated here) and
    /// rethrown by [`scope`] once every task has finished — always the
    /// panic of the *earliest spawned* panicking task, regardless of
    /// which thread unwinds first.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        let seq = self.next_seq.fetch_add(1, SeqCst);
        if !parallel_enabled(2) {
            // Inline, but with identical panic bookkeeping so semantics
            // do not depend on the pool width.
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                self.panic.record(seq, payload);
            }
            return;
        }
        self.pending.fetch_add(1, SeqCst);
        // Erase 'scope: the job cannot outlive the scope because `scope`
        // blocks on `pending == 0` before returning.
        let scope_ptr: *const Scope<'static> = (self as *const Scope<'scope>).cast();
        let job = Box::new(ScopeJob {
            scope: scope_ptr,
            seq,
            f,
        });
        let job_ref = JobRef {
            data: Box::into_raw(job) as *const (),
            exec: ScopeJob::<F>::exec,
        };
        global().submit_n(job_ref, 1);
    }
}

/// Creates a fork-join scope, runs `f` with it, waits for every spawned
/// task, and returns `f`'s result. If anything panicked, the rethrow is
/// deterministic: the root closure's panic wins, else the earliest
/// spawned panicking task's.
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    let s = Scope {
        pending: AtomicUsize::new(0),
        next_seq: AtomicUsize::new(0),
        panic: PanicStore::new(),
        _marker: std::marker::PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| f(&s)));
    if s.pending.load(SeqCst) > 0 {
        global().wait_until(&|| s.pending.load(SeqCst) == 0);
    }
    match result {
        Err(root_panic) => resume_unwind(root_panic),
        Ok(value) => {
            s.panic.rethrow_if_armed();
            value
        }
    }
}
